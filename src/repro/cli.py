"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    repro list                 # enumerate available experiments
    repro run table_5_4        # regenerate one artifact
    repro run all              # regenerate every artifact
    repro attributes           # print the platform sheet (Table 2.1)
    repro trace ebnn_pim       # run traced, write a Chrome trace JSON
    repro metrics ebnn_pim     # run, then dump the metrics registry
"""

from __future__ import annotations

import argparse
import sys

from repro import experiments
from repro.dpu.attributes import UPMEM_ATTRIBUTES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Implementation and Evaluation of Deep Neural "
            "Networks in Commercially Available Processing in Memory "
            "Hardware' (Das, 2022)"
        ),
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="host worker processes for set-wide DPU launches "
        "(default: REPRO_WORKERS env or the CPU count; 1 = serial "
        "in-process execution; results are identical either way)",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=None, metavar="P",
        help="per-DPU probability of an injected execution fault "
        "(deterministic per seed; see repro.faults)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None, metavar="SEED",
        help="seed for the fault-injection plan; the same seed "
        "reproduces the same fault sites (default: 0)",
    )
    parser.add_argument(
        "--fault-policy", choices=["raise", "isolate", "retry"],
        default=None,
        help="what a set-wide launch does with a faulted DPU "
        "(default: retry; healthy DPUs always complete)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment",
        help="experiment id (see 'repro list'), or 'all'",
    )

    sub.add_parser("attributes", help="print the UPMEM platform attributes")

    plan_parser = sub.add_parser(
        "plan", help="auto-map a network onto the PIM system"
    )
    plan_parser.add_argument("network", choices=["ebnn", "yolov3"])
    plan_parser.add_argument(
        "--input-size", type=int, default=416,
        help="YOLOv3 input resolution (multiple of 32)",
    )
    plan_parser.add_argument(
        "--width-scale", type=float, default=1.0,
        help="YOLOv3 channel width multiplier",
    )

    report_parser = sub.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    report_parser.add_argument(
        "path", nargs="?", default="REPRODUCTION_REPORT.md",
        help="output file (default: REPRODUCTION_REPORT.md)",
    )

    trace_parser = sub.add_parser(
        "trace",
        help="run one experiment under the tracer and export a Chrome trace",
    )
    trace_parser.add_argument(
        "experiment", help="experiment id (see 'repro list')"
    )
    trace_parser.add_argument(
        "--out", default="trace.json",
        help="Chrome trace-event JSON output path (default: trace.json); "
        "open it in chrome://tracing or ui.perfetto.dev",
    )
    trace_parser.add_argument(
        "--tree", action="store_true",
        help="also print the span tree to stdout",
    )

    metrics_parser = sub.add_parser(
        "metrics",
        help="run an experiment (optional), then dump the metrics registry",
    )
    metrics_parser.add_argument(
        "experiment", nargs="?",
        help="experiment id to run before dumping (omit to dump as-is)",
    )
    metrics_parser.add_argument(
        "--json", dest="json_path", metavar="PATH",
        help="also write the registry as JSON to PATH",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.workers is not None:
        from repro.host import parallel

        parallel.set_default_workers(args.workers)
    if (
        args.fault_rate is not None
        or args.fault_seed is not None
        or args.fault_policy is not None
    ):
        from repro import faults

        faults.install_plan(faults.FaultPlan(
            seed=args.fault_seed or 0,
            fault_rate=args.fault_rate or 0.0,
            default_policy=args.fault_policy or "retry",
        ))
    if args.command == "list":
        for experiment_id in experiments.available():
            print(experiment_id)
        return 0
    if args.command == "attributes":
        for name, value in UPMEM_ATTRIBUTES.as_table():
            print(f"{name}: {value}")
        return 0
    if args.command == "run":
        ids = (
            experiments.available()
            if args.experiment == "all"
            else [args.experiment]
        )
        for experiment_id in ids:
            print(experiments.run(experiment_id).render())
            print()
        return 0
    if args.command == "plan":
        return _plan(args)
    if args.command == "trace":
        return _trace(args)
    if args.command == "metrics":
        return _metrics(args)
    if args.command == "report":
        from repro.experiments.report import write_report

        count = write_report(args.path)
        print(f"wrote {count} experiments to {args.path}")
        return 0
    return 1  # pragma: no cover - argparse enforces the command set


def _trace(args) -> int:
    """Run one experiment with tracing enabled; export the Chrome trace."""
    from repro import telemetry

    with telemetry.tracing() as tracer:
        print(experiments.run(args.experiment).render())
    n_events = telemetry.write_chrome_trace(tracer, args.out)
    print(f"\nwrote {n_events} trace events ({len(tracer)} spans) to "
          f"{args.out} — open in chrome://tracing or ui.perfetto.dev")
    if args.tree:
        print()
        print(telemetry.render_tree(tracer))
    return 0


def _metrics(args) -> int:
    """Dump the global metrics registry, optionally after a run."""
    from repro import telemetry

    if args.experiment:
        print(experiments.run(args.experiment).render())
        print()
    text = telemetry.GLOBAL_METRICS.render_text()
    print(text if text else "(no metrics recorded)")
    if args.json_path:
        telemetry.GLOBAL_METRICS.dump_json(args.json_path)
        print(f"\nwrote metrics JSON to {args.json_path}")
    return 0


def _plan(args) -> int:
    """Run the mapping planner and print its decisions."""
    from repro.core.planner import MappingPlanner
    from repro.nn.models.darknet import Yolov3Model
    from repro.nn.models.ebnn import EbnnConfig

    planner = MappingPlanner()
    if args.network == "ebnn":
        plan = planner.plan_auto(EbnnConfig())
    else:
        plan = planner.plan_auto(
            Yolov3Model(args.input_size, width_scale=args.width_scale)
        )
    print(f"plan for {args.network}: {len(plan.decisions)} mapped stages, "
          f"peak {plan.peak_dpus} DPUs, "
          f"estimated latency {plan.total_seconds:.4g} s")
    for decision in plan.decisions[:10]:
        print(f"  {decision.layer_name:12s} {decision.scheme.value:22s} "
              f"{decision.n_dpus:5d} DPUs  {decision.n_tasklets:2d} tasklets")
        print(f"    {decision.rationale}")
    if len(plan.decisions) > 10:
        print(f"  ... {len(plan.decisions) - 10} more stages")
    return 0


if __name__ == "__main__":
    sys.exit(main())
