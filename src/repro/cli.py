"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    repro list                 # enumerate available experiments
    repro run table_5_4        # regenerate one artifact
    repro run all              # regenerate every artifact
    repro attributes           # print the platform sheet (Table 2.1)
"""

from __future__ import annotations

import argparse
import sys

from repro import experiments
from repro.dpu.attributes import UPMEM_ATTRIBUTES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Implementation and Evaluation of Deep Neural "
            "Networks in Commercially Available Processing in Memory "
            "Hardware' (Das, 2022)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment",
        help="experiment id (see 'repro list'), or 'all'",
    )

    sub.add_parser("attributes", help="print the UPMEM platform attributes")

    plan_parser = sub.add_parser(
        "plan", help="auto-map a network onto the PIM system"
    )
    plan_parser.add_argument("network", choices=["ebnn", "yolov3"])
    plan_parser.add_argument(
        "--input-size", type=int, default=416,
        help="YOLOv3 input resolution (multiple of 32)",
    )
    plan_parser.add_argument(
        "--width-scale", type=float, default=1.0,
        help="YOLOv3 channel width multiplier",
    )

    report_parser = sub.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    report_parser.add_argument(
        "path", nargs="?", default="REPRODUCTION_REPORT.md",
        help="output file (default: REPRODUCTION_REPORT.md)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in experiments.available():
            print(experiment_id)
        return 0
    if args.command == "attributes":
        for name, value in UPMEM_ATTRIBUTES.as_table():
            print(f"{name}: {value}")
        return 0
    if args.command == "run":
        ids = (
            experiments.available()
            if args.experiment == "all"
            else [args.experiment]
        )
        for experiment_id in ids:
            print(experiments.run(experiment_id).render())
            print()
        return 0
    if args.command == "plan":
        return _plan(args)
    if args.command == "report":
        from repro.experiments.report import write_report

        count = write_report(args.path)
        print(f"wrote {count} experiments to {args.path}")
        return 0
    return 1  # pragma: no cover - argparse enforces the command set


def _plan(args) -> int:
    """Run the mapping planner and print its decisions."""
    from repro.core.planner import MappingPlanner
    from repro.nn.models.darknet import Yolov3Model
    from repro.nn.models.ebnn import EbnnConfig

    planner = MappingPlanner()
    if args.network == "ebnn":
        plan = planner.plan_auto(EbnnConfig())
    else:
        plan = planner.plan_auto(
            Yolov3Model(args.input_size, width_scale=args.width_scale)
        )
    print(f"plan for {args.network}: {len(plan.decisions)} mapped stages, "
          f"peak {plan.peak_dpus} DPUs, "
          f"estimated latency {plan.total_seconds:.4g} s")
    for decision in plan.decisions[:10]:
        print(f"  {decision.layer_name:12s} {decision.scheme.value:22s} "
              f"{decision.n_dpus:5d} DPUs  {decision.n_tasklets:2d} tasklets")
        print(f"    {decision.rationale}")
    if len(plan.decisions) > 10:
        print(f"  ... {len(plan.decisions) - 10} more stages")
    return 0


if __name__ == "__main__":
    sys.exit(main())
