"""Algorithm 1: host-side LUT creation replacing BN + BinAct on the DPU.

The eBNN conv-pool block ends in Batch Normalization followed by Binary
Activation — both floating point, both catastrophically slow inside a DPU
(Section 3.3).  Section 4.1.4's fix: because the conv/pool output is a
*bounded integer* (a k x k binary correlation lies in [-k^2, +k^2]), the
host can precompute the 1-bit BN+BinAct result for **every possible input
value and every filter** and ship the table to the DPU, which then replaces
two float blocks with one WRAM lookup.

``LUT[(value - x) * z + j]`` holds the bit for input ``value`` and filter
``j``, where ``x`` is the smallest possible conv result and ``z`` the
filter count — the exact indexing of Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MappingError
from repro.host.alignment import pad_buffer
from repro.nn.layers import BatchNormParams


@dataclass(frozen=True)
class LookupTable:
    """The flattened BN+BinAct table of Algorithm 1."""

    table: np.ndarray   # uint8, shape (range_size * n_filters,)
    smallest: int       # x: smallest possible conv result
    largest: int        # y: largest possible conv result
    n_filters: int      # z

    @property
    def range_size(self) -> int:
        return self.largest - self.smallest + 1

    @property
    def size_bytes(self) -> int:
        return self.table.size

    def index(self, value: int, filter_index: int) -> int:
        """Flat index for (input value, filter) — Algorithm 1 line 18."""
        if not self.smallest <= value <= self.largest:
            raise MappingError(
                f"conv result {value} outside LUT range "
                f"[{self.smallest}, {self.largest}]"
            )
        if not 0 <= filter_index < self.n_filters:
            raise MappingError(
                f"filter {filter_index} outside [0, {self.n_filters})"
            )
        return (value - self.smallest) * self.n_filters + filter_index

    def lookup(self, value: int, filter_index: int) -> int:
        """One BN+BinAct result bit (the DPU-side access)."""
        return int(self.table[self.index(value, filter_index)])

    def lookup_map(self, values: np.ndarray, filter_index: int) -> np.ndarray:
        """Vectorized lookup over an integer feature map of one filter."""
        offsets = (np.asarray(values, dtype=np.int64) - self.smallest)
        if np.any(offsets < 0) or np.any(offsets >= self.range_size):
            raise MappingError("feature map contains values outside LUT range")
        return self.table[offsets * self.n_filters + filter_index]

    def lookup_all(self, feature_maps: np.ndarray) -> np.ndarray:
        """Vectorized lookup over a (filters, H, W) integer tensor."""
        if feature_maps.shape[0] != self.n_filters:
            raise MappingError(
                f"{feature_maps.shape[0]} maps for {self.n_filters} LUT filters"
            )
        out = np.empty(feature_maps.shape, dtype=np.uint8)
        for j in range(self.n_filters):
            out[j] = self.lookup_map(feature_maps[j], j)
        return out

    def to_bytes(self) -> bytes:
        """Serialize for the host->DPU transfer (8-byte padded)."""
        return pad_buffer(self.table.astype(np.uint8).tobytes()).data

    @staticmethod
    def from_bytes(
        data: bytes, smallest: int, largest: int, n_filters: int
    ) -> "LookupTable":
        """Deserialize a table previously produced by :meth:`to_bytes`."""
        size = (largest - smallest + 1) * n_filters
        if len(data) < size:
            raise MappingError(
                f"{len(data)} bytes cannot hold a {size}-entry LUT"
            )
        table = np.frombuffer(data[:size], dtype=np.uint8).copy()
        return LookupTable(table, smallest, largest, n_filters)


def create_lut(
    bn: BatchNormParams,
    smallest: int,
    largest: int,
) -> LookupTable:
    """Algorithm 1, line for line: run every (value, filter) through BN+BinAct.

    The host needs only the BN weights, the conv result range (a function
    of the filter size alone) and the filter count — exactly the inputs
    Section 4.1.4 lists.
    """
    if largest < smallest:
        raise MappingError(f"empty conv-result range [{smallest}, {largest}]")
    z = bn.n_filters
    table = np.zeros((largest - smallest + 1) * z, dtype=np.uint8)
    for value in range(smallest, largest + 1):
        for j in range(z):
            tmp = float(value)
            tmp = tmp + float(bn.w0[j])
            tmp = tmp - float(bn.w1[j])
            tmp = tmp / float(bn.w2[j])
            tmp = tmp * float(bn.w3[j])
            tmp = tmp + float(bn.w4[j])
            result = 1 if tmp >= 0.0 else 0
            table[(value - smallest) * z + j] = result
    return LookupTable(table, smallest, largest, z)


def lut_matches_float_path(lut: LookupTable, bn: BatchNormParams) -> bool:
    """Verify the LUT agrees with the float BN+BinAct on every input.

    The correctness property of the Section 4.1.4 transformation: for all
    in-range values and filters, table lookup == float pipeline.
    """
    values = np.arange(lut.smallest, lut.largest + 1, dtype=np.float64)
    for j in range(lut.n_filters):
        normalized = bn.apply(values, j)
        expected = (normalized >= 0).astype(np.uint8)
        actual = lut.lookup_map(values.astype(np.int64), j)
        if not np.array_equal(expected, actual):
            return False
    return True
