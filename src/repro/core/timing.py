"""End-to-end latency assembly for the CNN mappings.

Combines the three cost components of a PIM-accelerated inference:

* host<->DPU transfer time over the memory link,
* DPU execution time (from the simulator's cycle accounting), and
* host-side compute (the layers kept off the PIM).

The thesis reports DPU completion times; the transfer/host components here
let the examples and ablations show full-pipeline numbers and are
documented model constants, not measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry
from repro.dpu.attributes import UPMEM_ATTRIBUTES, UpmemAttributes
from repro.errors import MappingError

_M_BREAKDOWN_TOTAL = telemetry.GLOBAL_METRICS.histogram(
    "breakdown.total_seconds",
    "end-to-end seconds per assembled LatencyBreakdown",
    buckets=tuple(10.0 ** e for e in range(-9, 3)),
)

#: Aggregate host->DIMM link bandwidth (DDR4-2400 class, per the UPMEM
#: platform's standard DIMM interface).
HOST_LINK_BYTES_PER_SECOND = 16e9


@dataclass(frozen=True)
class LatencyBreakdown:
    """One inference's latency decomposed by pipeline stage."""

    transfer_seconds: float
    dpu_seconds: float
    host_seconds: float

    def __post_init__(self) -> None:
        for name, value in (
            ("transfer", self.transfer_seconds),
            ("dpu", self.dpu_seconds),
            ("host", self.host_seconds),
        ):
            if value < 0:
                raise MappingError(f"negative {name} time: {value}")

    @property
    def total_seconds(self) -> float:
        return self.transfer_seconds + self.dpu_seconds + self.host_seconds

    @property
    def dpu_fraction(self) -> float:
        total = self.total_seconds
        return self.dpu_seconds / total if total else 0.0

    def scaled_frequency(
        self,
        new_frequency_hz: float,
        attributes: UpmemAttributes = UPMEM_ATTRIBUTES,
    ) -> "LatencyBreakdown":
        """What-if: rescale the DPU component to a different clock.

        Models the Section 4.3.4 improvement of raising the DPU clock to
        the originally announced 600 MHz.
        """
        if new_frequency_hz <= 0:
            raise MappingError(f"bad frequency: {new_frequency_hz}")
        factor = attributes.frequency_hz / new_frequency_hz
        return LatencyBreakdown(
            transfer_seconds=self.transfer_seconds,
            dpu_seconds=self.dpu_seconds * factor,
            host_seconds=self.host_seconds,
        )

    def emit(self) -> "LatencyBreakdown":
        """Record this breakdown on the active span (chainable).

        The stage-wise decomposition lands as attributes of the innermost
        open span, so any traced pipeline gets per-phase numbers for free.
        """
        _M_BREAKDOWN_TOTAL.observe(self.total_seconds)
        tracer = telemetry.current_tracer()
        if tracer is not None and tracer.current is not None:
            tracer.current.set(
                transfer_seconds=self.transfer_seconds,
                dpu_seconds=self.dpu_seconds,
                host_seconds=self.host_seconds,
                total_seconds=self.total_seconds,
                dpu_fraction=self.dpu_fraction,
            )
        return self


def transfer_seconds(n_bytes: int, link_bytes_per_second: float = HOST_LINK_BYTES_PER_SECOND) -> float:
    """Host-link time to move ``n_bytes``."""
    if n_bytes < 0:
        raise MappingError(f"negative transfer size: {n_bytes}")
    if link_bytes_per_second <= 0:
        raise MappingError(f"bad link bandwidth: {link_bytes_per_second}")
    return n_bytes / link_bytes_per_second


def breakdown_from_cycles(
    dpu_cycles: float,
    *,
    transfer_bytes: int = 0,
    host_seconds: float = 0.0,
    attributes: UpmemAttributes = UPMEM_ATTRIBUTES,
) -> LatencyBreakdown:
    """Assemble a breakdown from simulator cycles plus host-side costs."""
    return LatencyBreakdown(
        transfer_seconds=transfer_seconds(transfer_bytes),
        dpu_seconds=attributes.cycles_to_seconds(dpu_cycles),
        host_seconds=host_seconds,
    ).emit()


def speedup(baseline_seconds: float, accelerated_seconds: float) -> float:
    """Conventional speedup ratio with guarding."""
    if baseline_seconds < 0 or accelerated_seconds <= 0:
        raise MappingError(
            f"bad speedup inputs: {baseline_seconds} / {accelerated_seconds}"
        )
    return baseline_seconds / accelerated_seconds
