"""Automatic CNN-to-PIM mapping planner.

The thesis maps each CNN by hand (multi-image-per-DPU for eBNN, GEMM row
distribution for YOLOv3) and its future-work section calls for a tool
that makes these decisions automatically, OpenCL-style (Section 6.1).
This module is that tool: given a network's layer geometry and a platform
description it chooses, per layer,

* the **scheme** — batch whole inferences per DPU when a layer's working
  set fits WRAM, otherwise unroll the GEMM one row per DPU,
* the DPU count, tasklet count and accumulator regime, and
* produces a latency estimate with a human-readable rationale,

reusing the exact cost recipes of the hand mappings so the planner's
numbers are the mappings' numbers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.mapping_ebnn import (
    EBNN_TASKLETS,
    IMAGES_PER_DPU,
    EbnnDpuLayout,
    ebnn_dpu_cycles,
)
from repro.core.mapping_yolo import (
    YOLO_TASKLETS,
    AccumulatorPolicy,
    gemm_layer_cycles,
)
from repro.dpu.attributes import UPMEM_ATTRIBUTES, UpmemAttributes
from repro.dpu.costs import OptLevel, DMA_MAX_TRANSFER_BYTES
from repro.errors import MappingError
from repro.nn.gemm import GemmShape
from repro.nn.models.darknet import Yolov3Model
from repro.nn.models.ebnn import EbnnConfig


class Scheme(enum.Enum):
    """The two operation-mapping schemes of Chapter 4."""

    IMAGE_BATCH = "multi-image-per-dpu"    # Section 4.1
    GEMM_ROW = "gemm-row-per-dpu"          # Section 4.2


@dataclass(frozen=True)
class LayerDecision:
    """The planner's choice for one layer."""

    layer_name: str
    scheme: Scheme
    n_dpus: int
    n_tasklets: int
    policy: AccumulatorPolicy | None
    cycles: float
    rationale: str


@dataclass
class MappingPlan:
    """A complete network mapping with its latency estimate."""

    attributes: UpmemAttributes
    decisions: list[LayerDecision] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return sum(d.cycles for d in self.decisions)

    @property
    def total_seconds(self) -> float:
        return self.attributes.cycles_to_seconds(self.total_cycles)

    @property
    def peak_dpus(self) -> int:
        return max((d.n_dpus for d in self.decisions), default=0)

    def scheme_histogram(self) -> dict[Scheme, int]:
        histogram: dict[Scheme, int] = {}
        for decision in self.decisions:
            histogram[decision.scheme] = histogram.get(decision.scheme, 0) + 1
        return histogram


class MappingPlanner:
    """Chooses DPU mappings the way Chapter 4's methodology prescribes."""

    #: WRAM a per-DPU inference may use once stacks are reserved.
    WRAM_WORKING_SET_BUDGET = 40 * 1024

    def __init__(
        self,
        attributes: UpmemAttributes = UPMEM_ATTRIBUTES,
        *,
        opt_level: OptLevel = OptLevel.O3,
    ) -> None:
        self.attributes = attributes
        self.opt_level = opt_level

    # ------------------------------------------------------------------ #
    # per-layer decisions
    # ------------------------------------------------------------------ #

    def plan_gemm_layer(self, name: str, shape: GemmShape) -> LayerDecision:
        """Map one convolutional GEMM (the Section 4.2 scheme)."""
        n_dpus = min(shape.m, self.attributes.n_dpus)
        waves = -(-shape.m // self.attributes.n_dpus)
        policy = AccumulatorPolicy.for_shape(shape)
        cycles = waves * gemm_layer_cycles(
            shape,
            n_tasklets=YOLO_TASKLETS,
            opt_level=self.opt_level,
            policy=policy,
        )
        rationale = (
            f"GEMM row per DPU: M={shape.m} filters -> {n_dpus} DPUs"
            + (f" in {waves} waves" if waves > 1 else "")
            + f"; ctmp ({4 * shape.n} B) "
            + ("fits WRAM" if policy is AccumulatorPolicy.WRAM
               else "spills to MRAM")
        )
        return LayerDecision(
            layer_name=name,
            scheme=Scheme.GEMM_ROW,
            n_dpus=n_dpus,
            n_tasklets=YOLO_TASKLETS,
            policy=policy,
            cycles=cycles,
            rationale=rationale,
        )

    def plan_image_batch(
        self, name: str, config: EbnnConfig, n_images: int
    ) -> LayerDecision:
        """Map a whole small network by batching images (Section 4.1)."""
        if n_images < 1:
            raise MappingError(f"need at least one image, got {n_images}")
        layout = EbnnDpuLayout(config)
        per_dpu = max(
            1, min(IMAGES_PER_DPU, DMA_MAX_TRANSFER_BYTES // layout.image_bytes)
        )
        tasklets = min(EBNN_TASKLETS, max(per_dpu, 1))
        n_dpus = min(-(-n_images // per_dpu), self.attributes.n_dpus)
        cycles = ebnn_dpu_cycles(
            config,
            n_images=min(per_dpu, n_images),
            n_tasklets=tasklets,
            opt_level=self.opt_level,
            use_lut=True,
            images_per_dpu=per_dpu,
        )
        rationale = (
            f"image batch per DPU: {per_dpu} images fit one "
            f"{DMA_MAX_TRANSFER_BYTES}-byte staging transfer; "
            f"{tasklets} tasklets (one per image); LUT replaces BN+BinAct"
        )
        return LayerDecision(
            layer_name=name,
            scheme=Scheme.IMAGE_BATCH,
            n_dpus=n_dpus,
            n_tasklets=tasklets,
            policy=None,
            cycles=cycles,
            rationale=rationale,
        )

    def working_set_bytes(self, config: EbnnConfig) -> int:
        """Per-inference WRAM working set of a small binary network."""
        layout = EbnnDpuLayout(config)
        return (
            layout.image_bytes
            + layout.result_bytes_per_image
            + layout.lut_bytes
            + layout.weight_bytes
        )

    def fits_image_batch(self, config: EbnnConfig) -> bool:
        """Whether the whole inference fits the WRAM working-set budget."""
        return self.working_set_bytes(config) <= self.WRAM_WORKING_SET_BUDGET

    # ------------------------------------------------------------------ #
    # whole-network plans
    # ------------------------------------------------------------------ #

    def plan_ebnn(self, config: EbnnConfig, n_images: int) -> MappingPlan:
        """Plan an eBNN-class network (chooses the image-batch scheme)."""
        if not self.fits_image_batch(config):
            raise MappingError(
                f"network working set ({self.working_set_bytes(config)} B) "
                f"exceeds the WRAM budget; map it layer-wise instead"
            )
        plan = MappingPlan(self.attributes)
        plan.decisions.append(
            self.plan_image_batch("conv_pool_block", config, n_images)
        )
        return plan

    def plan_yolov3(self, model: Yolov3Model) -> MappingPlan:
        """Plan a YOLOv3-class network (GEMM row scheme per conv layer)."""
        plan = MappingPlan(self.attributes)
        for layer in model.plans:
            plan.decisions.append(
                self.plan_gemm_layer(f"conv_{layer.layer_index}", layer.gemm)
            )
        return plan

    def plan_auto(self, workload) -> MappingPlan:
        """Dispatch on the workload type, the 'tool' of Section 6.1."""
        if isinstance(workload, Yolov3Model):
            return self.plan_yolov3(workload)
        if isinstance(workload, EbnnConfig):
            return self.plan_ebnn(workload, IMAGES_PER_DPU)
        raise MappingError(
            f"no mapping strategy for workload type {type(workload).__name__}"
        )
