"""Profiling-driven host/DPU work partitioning (Sections 3.1 and 4).

The paper's methodology: profile the application, identify the highly
data-parallel, fixed-point-friendly functions (for CNNs, the convolution /
GEMM), compile *those* for the DPUs, and keep everything else — float-heavy
blocks, control flow, softmax — on the host.  This module captures that
decision procedure so the mapping of a new CNN follows the same
standardized framework the thesis presents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import telemetry
from repro.errors import MappingError


@dataclass(frozen=True)
class FunctionProfile:
    """Profile of one application function (what a profiler reports)."""

    name: str
    total_ops: int                 # arithmetic operations per invocation
    data_bytes: int                # bytes touched per invocation
    parallel_fraction: float       # share of ops that are data-parallel
    uses_float: bool = False       # contains floating-point arithmetic

    def __post_init__(self) -> None:
        if self.total_ops < 0 or self.data_bytes < 0:
            raise MappingError(f"negative profile counters in {self.name!r}")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise MappingError(
                f"parallel fraction {self.parallel_fraction} of "
                f"{self.name!r} outside [0, 1]"
            )


@dataclass(frozen=True)
class OffloadDecision:
    """Placement of one function with the reason for the choice."""

    function: FunctionProfile
    to_dpu: bool
    reason: str


@dataclass
class OffloadPlan:
    """The host/DPU split the partitioner produced."""

    decisions: list[OffloadDecision] = field(default_factory=list)

    @property
    def dpu_functions(self) -> list[str]:
        return [d.function.name for d in self.decisions if d.to_dpu]

    @property
    def host_functions(self) -> list[str]:
        return [d.function.name for d in self.decisions if not d.to_dpu]

    def offloaded_ops_fraction(self) -> float:
        """Share of total operations the plan moves to the DPUs."""
        total = sum(d.function.total_ops for d in self.decisions)
        if total == 0:
            return 0.0
        dpu = sum(d.function.total_ops for d in self.decisions if d.to_dpu)
        return dpu / total


def partition(
    functions: list[FunctionProfile],
    *,
    min_parallel_fraction: float = 0.8,
    min_ops_share: float = 0.01,
    allow_float_on_dpu: bool = False,
) -> OffloadPlan:
    """Decide, function by function, what runs on the DPUs.

    A function is offloaded when it is overwhelmingly data-parallel and
    carries a non-trivial share of the application's operations; functions
    containing floating point stay on the host unless explicitly allowed
    (Section 3.3's conclusion), which is the policy that sends the eBNN
    BN+BinAct block host-side before the LUT transformation brings its
    *result* back to the DPU.
    """
    if not functions:
        raise MappingError("cannot partition an empty profile")
    with telemetry.span("core.offload.partition", n_functions=len(functions)) as sp:
        plan = _partition(
            functions, min_parallel_fraction, min_ops_share, allow_float_on_dpu
        )
        sp.set(
            n_offloaded=len(plan.dpu_functions),
            ops_fraction=plan.offloaded_ops_fraction(),
        )
    return plan


def _partition(
    functions: list[FunctionProfile],
    min_parallel_fraction: float,
    min_ops_share: float,
    allow_float_on_dpu: bool,
) -> OffloadPlan:
    total_ops = sum(f.total_ops for f in functions) or 1
    plan = OffloadPlan()
    for fn in functions:
        share = fn.total_ops / total_ops
        if fn.uses_float and not allow_float_on_dpu:
            plan.decisions.append(
                OffloadDecision(fn, False, "floating point stays on the host")
            )
        elif fn.parallel_fraction < min_parallel_fraction:
            plan.decisions.append(
                OffloadDecision(
                    fn, False,
                    f"only {fn.parallel_fraction:.0%} data-parallel "
                    f"(threshold {min_parallel_fraction:.0%})",
                )
            )
        elif share < min_ops_share:
            plan.decisions.append(
                OffloadDecision(
                    fn, False,
                    f"carries {share:.2%} of operations "
                    f"(threshold {min_ops_share:.2%})",
                )
            )
        else:
            plan.decisions.append(
                OffloadDecision(
                    fn, True,
                    f"{fn.parallel_fraction:.0%} data-parallel, "
                    f"{share:.1%} of operations",
                )
            )
    return plan


def ebnn_application_profile(
    conv_macs: int, bn_outputs: int, classes: int = 10
) -> list[FunctionProfile]:
    """The function profile of the eBNN application (Section 4.1 split)."""
    return [
        FunctionProfile("binary_conv_pool", conv_macs, conv_macs // 4, 0.99),
        FunctionProfile("bn_binact", 6 * bn_outputs, 4 * bn_outputs, 0.99,
                        uses_float=True),
        FunctionProfile("fc_softmax", 2 * classes * bn_outputs,
                        classes * bn_outputs, 0.5, uses_float=True),
        FunctionProfile("image_io", bn_outputs, 8 * bn_outputs, 0.1),
    ]


def yolo_application_profile(total_macs: int) -> list[FunctionProfile]:
    """The function profile of the YOLOv3 application (Section 4.2 split)."""
    return [
        FunctionProfile("gemm", total_macs, total_macs // 2, 0.99),
        FunctionProfile("im2col", total_macs // 100, total_macs // 8, 0.9,
                        uses_float=True),
        FunctionProfile("bn_activation", total_macs // 200, total_macs // 50,
                        0.9, uses_float=True),
        FunctionProfile("detection_decode", total_macs // 10000,
                        total_macs // 5000, 0.3, uses_float=True),
    ]
