"""The YOLOv3 mapping scheme: one GEMM row per DPU (Section 4.2).

Scheme summary (Section 4.2.3, Fig. 4.6):

* Each convolutional layer is an Algorithm 2 GEMM, ``C(MxN) = A(MxK) x
  B(KxN)``.  The outer (filter) loop is unrolled across DPUs: DPU ``i``
  receives row ``i`` of the weights ``A``, the **entire** input matrix
  ``B``, and produces row ``i`` of ``C`` — so a layer occupies ``M`` DPUs.
* Inside a DPU, the inner (column) loop is split across tasklets: tasklet
  ``t`` owns columns ``t, t + T, t + 2T, ...`` (dependences in the middle
  loop force the parallelization to the innermost loop).
* The ``ctmp`` accumulator is ``4N`` bytes.  For real YOLOv3 layers this
  exceeds WRAM once stacks are reserved (the 160 KB buffer Section 4.3.4
  laments), so accumulator traffic goes to MRAM through the DMA — the
  reason the paper's YOLOv3 numbers are MRAM-bound.

Like the eBNN mapping, one cost recipe (:func:`charge_gemm_row_costs`)
backs both the functional kernel and the closed-form layer/network
estimators used by the Fig. 4.7 sweeps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.dpu.attributes import UPMEM_ATTRIBUTES, UpmemAttributes
from repro.dpu.costs import Operation, OptLevel, Precision, mram_access_cycles
from repro.dpu.device import DpuImage
from repro.dpu.kernel import GLOBAL_KERNELS, KernelContext
from repro.dpu.memory import Mram, Wram
from repro.errors import MappingError
from repro.host.alignment import align_up
from repro.host.runtime import DpuSystem
from repro.host.transfer import scatter_rows
from repro.nn.gemm import GemmShape, gemm_row
from repro.nn.models.darknet import Yolov3Model
from repro.nn.quantize import QuantParams

#: Tasklets the paper identifies as the saturation point for YOLOv3.
YOLO_TASKLETS = 11

#: WRAM usable for the ctmp accumulator after tasklet stacks are reserved:
#: 11 tasklets at the ~5.2 KB stacks the quantized YOLOv3 build needs leave
#: well under 8 KB of WRAM (the Section 4.3.4 complaint).
CTMP_WRAM_BUDGET_BYTES = 8 * 1024

#: Plain instructions per MAC besides the multiply: accumulator add,
#: B-element load, and loop/induction overhead.
_MAC_EXTRA_INSTR = 4

#: Plain instructions per output element in the rescale pass (clamp + store).
_OUTPUT_EXTRA_INSTR = 3

#: Wrapper instructions around the three mram_read/mram_write library calls
#: an MRAM-resident inner iteration performs (optimized code).
_MRAM_CALL_INSTR_PER_MAC = 12


class AccumulatorPolicy(enum.Enum):
    """Where the ctmp accumulator lives during the inner loop."""

    #: ctmp fits WRAM (small N); accumulator access is single-cycle.
    WRAM = "wram"
    #: ctmp resides in MRAM; every accumulate is a DMA read-modify-write,
    #: the regime the paper's full-size YOLOv3 ran in (Section 4.3.3).
    MRAM = "mram"

    @staticmethod
    def for_shape(
        shape: GemmShape, budget_bytes: int | None = None
    ) -> "AccumulatorPolicy":
        budget = CTMP_WRAM_BUDGET_BYTES if budget_bytes is None else budget_bytes
        if 4 * shape.n <= budget:
            return AccumulatorPolicy.WRAM
        return AccumulatorPolicy.MRAM


def charge_gemm_row_costs(
    ctx: KernelContext,
    shape: GemmShape,
    *,
    policy: AccumulatorPolicy | None = None,
) -> None:
    """Charge one DPU's share of a layer GEMM: one row of A against all of B.

    Work: ``K*N`` MACs plus the N-element rescale pass of Algorithm 2.
    MRAM traffic: the A row and all of B stream in; the C row streams out;
    under the MRAM accumulator policy every MAC additionally pays an
    8-byte-aligned DMA read and write of ``ctmp[j]``.
    """
    policy = policy or AccumulatorPolicy.for_shape(shape)
    macs = shape.k * shape.n

    # Input/output edge traffic (int16 elements).
    ctx.charge_streamed_dma(2 * shape.k)            # the A row
    ctx.charge_streamed_dma(2 * shape.n)            # the C row out

    # Inner loop: APART * B[k*N + j] + ctmp[j].
    ctx.charge_op(Operation.MUL, Precision.FIXED_16, macs)
    ctx.charge_op(Operation.ADD, Precision.FIXED_32, macs)
    ctx.charge_instructions(_MAC_EXTRA_INSTR * macs)
    if ctx.opt_level is OptLevel.O0:
        # Unoptimized array indexing multiplies per element access.
        ctx.charge_call("__mulsi3", macs)

    if policy is AccumulatorPolicy.MRAM:
        # The regime the paper's full-size layers ran in (Section 4.3.3):
        # tasklet stacks consume WRAM, so B is fetched element-wise and
        # ctmp[j] is read-modify-written through the DMA, one 8-byte beat
        # per access, plus the mram_read/mram_write wrapper instructions.
        beat = mram_access_cycles(8)
        ctx.charge_dma_cycles(3 * beat * macs, 24 * macs)
        ctx.charge_instructions(_MRAM_CALL_INSTR_PER_MAC * macs)
    else:
        # B streams through a WRAM staging buffer; ctmp stays in WRAM.
        ctx.charge_streamed_dma(2 * shape.k * shape.n)
        ctx.charge_wram_access(2 * macs)

    # Output pass: ctmp[j] / 32, clamp, store (Algorithm 2 lines 8-10).
    ctx.charge_op(Operation.DIV, Precision.FIXED_32, shape.n)
    ctx.charge_instructions(_OUTPUT_EXTRA_INSTR * shape.n)


@dataclass(frozen=True)
class YoloDpuLayout:
    """MRAM symbol layout for one GEMM-row DPU."""

    shape: GemmShape

    @property
    def a_row_bytes(self) -> int:
        return align_up(2 * self.shape.k)

    @property
    def b_bytes(self) -> int:
        return align_up(2 * self.shape.k * self.shape.n)

    @property
    def c_row_bytes(self) -> int:
        return align_up(4 * self.shape.n)

    def build_image(self, name: str = "yolo_gemm") -> DpuImage:
        return DpuImage.from_symbol_layout(
            name,
            kernel_name="yolo_gemm_row",
            layout=[
                ("a_row", self.a_row_bytes),
                ("b", self.b_bytes),
                ("c_row", self.c_row_bytes),
                ("meta", 24),  # actual M, N, K, ALPHA, divisor, pad
            ],
        )


@GLOBAL_KERNELS.register("yolo_gemm_row")
def yolo_gemm_row_kernel(ctx: KernelContext, *, layout: YoloDpuLayout) -> None:
    """One DPU's GEMM row (functional + cycle-charged).

    The metadata carries the actual dimensions plus the accumulator
    divisor — 32 in Algorithm 2, widened by the host for layers whose
    quantization would otherwise clamp (the padded-size side-channel
    protocol of Section 3.2 applied to scaling metadata).
    """
    shape = layout.shape
    meta = ctx.read_symbol_array("meta", np.int32, 6)
    n, k, alpha, divisor = (int(meta[i]) for i in range(1, 5))
    if (n, k) != (shape.n, shape.k):
        raise MappingError(
            f"metadata GEMM shape ({n}, {k}) != layout ({shape.n}, {shape.k})"
        )
    a_row = ctx.read_symbol_array("a_row", np.int16, k)
    b = ctx.read_symbol_array("b", np.int16, k * n).reshape(k, n)
    c_row = gemm_row(alpha, a_row, b, divisor=divisor or 32)
    ctx.write_symbol_array("c_row", c_row.astype(np.int32))
    charge_gemm_row_costs(ctx, shape)


def gemm_layer_cycles(
    shape: GemmShape,
    *,
    n_tasklets: int = YOLO_TASKLETS,
    opt_level: OptLevel = OptLevel.O3,
    policy: AccumulatorPolicy | None = None,
    ctmp_budget_bytes: int | None = None,
) -> float:
    """Closed-form DPU cycles for one layer (all row-DPUs run in parallel)."""
    if policy is None:
        policy = AccumulatorPolicy.for_shape(shape, ctmp_budget_bytes)
    ctx = KernelContext(Mram(), Wram(), n_tasklets=n_tasklets, opt_level=opt_level)
    charge_gemm_row_costs(ctx, shape, policy=policy)
    return ctx.elapsed_cycles()


@dataclass
class YoloLayerTiming:
    """Timing of one convolutional layer under the mapping."""

    layer_index: int
    shape: GemmShape
    n_dpus: int
    cycles: float
    seconds: float
    policy: AccumulatorPolicy


@dataclass
class YoloNetworkTiming:
    """Per-layer and total single-image latency of the mapped network."""

    layers: list[YoloLayerTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(layer.seconds for layer in self.layers)

    @property
    def mean_layer_seconds(self) -> float:
        return self.total_seconds / len(self.layers) if self.layers else 0.0

    @property
    def max_layer_seconds(self) -> float:
        return max((layer.seconds for layer in self.layers), default=0.0)

    @property
    def total_dpu_demand(self) -> int:
        return max((layer.n_dpus for layer in self.layers), default=0)


def yolo_network_timing(
    model: Yolov3Model,
    *,
    attributes: UpmemAttributes = UPMEM_ATTRIBUTES,
    n_tasklets: int = YOLO_TASKLETS,
    opt_level: OptLevel = OptLevel.O3,
    policy: AccumulatorPolicy | None = None,
    ctmp_budget_bytes: int | None = None,
) -> YoloNetworkTiming:
    """Single-image latency estimate for the whole network (Section 4.3.1).

    Layers execute one after another (the host must gather each layer's
    output to build the next layer's B); within a layer all M row-DPUs run
    in parallel, so layer time is one DPU's time.  A layer wider than the
    system executes in waves of ``n_dpus`` rows.  ``ctmp_budget_bytes``
    explores the Section 4.3.4 what-if of a larger WRAM.
    """
    timing = YoloNetworkTiming()
    for plan in model.plans:
        shape = plan.gemm
        layer_policy = policy or AccumulatorPolicy.for_shape(
            shape, ctmp_budget_bytes
        )
        waves = -(-shape.m // attributes.n_dpus)
        cycles = waves * gemm_layer_cycles(
            shape,
            n_tasklets=n_tasklets,
            opt_level=opt_level,
            policy=layer_policy,
        )
        timing.layers.append(
            YoloLayerTiming(
                layer_index=plan.layer_index,
                shape=shape,
                n_dpus=min(shape.m, attributes.n_dpus),
                cycles=cycles,
                seconds=attributes.cycles_to_seconds(cycles),
                policy=layer_policy,
            )
        )
    return timing


class YoloPimRunner:
    """Functional end-to-end YOLOv3 inference through the PIM system.

    Intended for reduced-scale networks (tests/examples): every conv
    layer's GEMM is quantized to int16, its rows distributed over DPUs via
    the Fig. 4.6 scheme, executed by the row kernel, gathered, and
    dequantized before the host applies BN and activation.
    """

    def __init__(
        self,
        system: DpuSystem,
        model: Yolov3Model,
        *,
        n_tasklets: int = YOLO_TASKLETS,
        opt_level: OptLevel = OptLevel.O3,
        alpha: int = 1,
    ) -> None:
        self.system = system
        self.model = model
        self.n_tasklets = n_tasklets
        self.opt_level = opt_level
        self.alpha = alpha
        self.layer_reports: list[YoloLayerTiming] = []

    def run(self, image: np.ndarray) -> list[np.ndarray]:
        """Forward the image; returns the YOLO head outputs."""
        self.layer_reports = []
        return self.model.forward(image, conv_fn=self._pim_gemm)

    def timing(self) -> YoloNetworkTiming:
        return YoloNetworkTiming(layers=list(self.layer_reports))

    def _pim_gemm(self, plan, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        shape = plan.gemm
        a_params = QuantParams.from_tensor(a, bits=8)
        b_params = QuantParams.from_tensor(b, bits=8)
        a_q = a_params.quantize(a).astype(np.int16)
        b_q = b_params.quantize(b).astype(np.int16)

        # Algorithm 2 divides the accumulator by 32 before the int16 clamp;
        # the thesis's quantized network has calibrated scales that make 32
        # sufficient.  With ad-hoc per-layer quantization we widen the
        # divisor until the worst-case accumulator fits, which plays the
        # same calibration role.
        bound = int(np.abs(a_q.astype(np.int64)).sum(axis=1).max()) * int(
            np.abs(b_q).max() or 1
        )
        divisor = 32
        while bound * self.alpha // divisor > 32767:
            divisor *= 2

        n_dpus = min(shape.m, self.system.n_dpus)
        layout = YoloDpuLayout(shape)
        with telemetry.span(
            "yolo.layer",
            category="pipeline",
            layer=plan.layer_index,
            m=shape.m,
            n=shape.n,
            k=shape.k,
            n_dpus=n_dpus,
        ) as layer_span:
            c_rows, cycles = self._run_layer(
                plan, layout, a_q, b_q, shape, n_dpus, divisor
            )
            layer_span.set(
                cycles=cycles,
                seconds=self.system.attributes.cycles_to_seconds(cycles),
                policy=AccumulatorPolicy.for_shape(shape).value,
            )

        # Host-side dequantization: undo quantization scales and divisor.
        scale = a_params.scale * b_params.scale * divisor / self.alpha
        return c_rows.astype(np.float32) * np.float32(scale)

    def _run_layer(
        self, plan, layout, a_q, b_q, shape, n_dpus, divisor
    ) -> tuple[np.ndarray, float]:
        dpu_set = self.system.allocate(n_dpus)
        try:
            dpu_set.load(layout.build_image(f"yolo_layer_{plan.layer_index}"))
            dpu_set.broadcast(
                "b", np.ascontiguousarray(b_q.reshape(-1), dtype=np.int16)
            )
            dpu_set.broadcast(
                "meta",
                np.array(
                    [shape.m, shape.n, shape.k, self.alpha, divisor, 0],
                    dtype=np.int32,
                ),
            )
            c_rows = np.zeros((shape.m, shape.n), dtype=np.int32)
            cycles = 0.0
            for start in range(0, shape.m, n_dpus):
                rows = list(range(start, min(start + n_dpus, shape.m)))
                wave = [dpu_set[i] for i in range(len(rows))]
                batch_rows = [
                    np.ascontiguousarray(a_q[r], dtype=np.int16) for r in rows
                ]
                scatter_rows(wave, "a_row", batch_rows)
                wave_cycles = 0.0
                for dpu in wave:
                    result = dpu.launch(
                        n_tasklets=self.n_tasklets,
                        opt_level=self.opt_level,
                        layout=layout,
                    )
                    wave_cycles = max(wave_cycles, float(result.cycles))
                cycles += wave_cycles
                # Row-DPUs of a wave ran in parallel on the simulated clock;
                # the layer advances by the slowest row.
                telemetry.advance_sim(
                    self.system.attributes.cycles_to_seconds(wave_cycles)
                )
                for dpu, row_index in zip(wave, rows):
                    c_rows[row_index] = dpu.read_symbol_array(
                        "c_row", np.int32, shape.n
                    )
            policy = AccumulatorPolicy.for_shape(shape)
            self.layer_reports.append(
                YoloLayerTiming(
                    layer_index=plan.layer_index,
                    shape=shape,
                    n_dpus=n_dpus,
                    cycles=cycles,
                    seconds=self.system.attributes.cycles_to_seconds(cycles),
                    policy=policy,
                )
            )
        finally:
            self.system.free(dpu_set)
        return c_rows, cycles
