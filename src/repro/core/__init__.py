"""The paper's primary contribution: CNN-to-UPMEM mapping and orchestration."""

from repro.core.lut import LookupTable, create_lut, lut_matches_float_path
from repro.core.mapping_ebnn import (
    EBNN_TASKLETS,
    IMAGES_PER_DPU,
    EbnnDpuLayout,
    EbnnPimRunner,
    EbnnRunResult,
    charge_ebnn_costs,
    ebnn_dpu_cycles,
    ebnn_image_latency_seconds,
)
from repro.core.mapping_yolo import (
    YOLO_TASKLETS,
    AccumulatorPolicy,
    YoloDpuLayout,
    YoloNetworkTiming,
    YoloPimRunner,
    charge_gemm_row_costs,
    gemm_layer_cycles,
    yolo_network_timing,
)
from repro.core.planner import (
    LayerDecision,
    MappingPlan,
    MappingPlanner,
    Scheme,
)
from repro.core.offload import (
    FunctionProfile,
    OffloadPlan,
    ebnn_application_profile,
    partition,
    yolo_application_profile,
)
from repro.core.timing import (
    HOST_LINK_BYTES_PER_SECOND,
    LatencyBreakdown,
    breakdown_from_cycles,
    speedup,
    transfer_seconds,
)

__all__ = [
    "LookupTable",
    "create_lut",
    "lut_matches_float_path",
    "EBNN_TASKLETS",
    "IMAGES_PER_DPU",
    "EbnnDpuLayout",
    "EbnnPimRunner",
    "EbnnRunResult",
    "charge_ebnn_costs",
    "ebnn_dpu_cycles",
    "ebnn_image_latency_seconds",
    "YOLO_TASKLETS",
    "AccumulatorPolicy",
    "YoloDpuLayout",
    "YoloNetworkTiming",
    "YoloPimRunner",
    "charge_gemm_row_costs",
    "gemm_layer_cycles",
    "yolo_network_timing",
    "LayerDecision",
    "MappingPlan",
    "MappingPlanner",
    "Scheme",
    "FunctionProfile",
    "OffloadPlan",
    "ebnn_application_profile",
    "partition",
    "yolo_application_profile",
    "HOST_LINK_BYTES_PER_SECOND",
    "LatencyBreakdown",
    "breakdown_from_cycles",
    "speedup",
    "transfer_seconds",
]
