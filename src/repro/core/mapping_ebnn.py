"""The eBNN mapping scheme: multiple images per DPU (Section 4.1).

Scheme summary (Sections 4.1.3-4.1.4):

* Images are binarized and bit-packed (a 28x28 image is 98 bytes, padded
  to 104); **16 images** are staged per DPU because one MRAM->WRAM DMA
  transfer is capped at 2048 bytes (16 x 104 = 1664).
* Each tasklet processes whole images, so 16 tasklets saturate the
  16-image batch (the Fig. 4.7(a) shape).
* The conv-pool block runs on the DPU; BN + BinAct either runs in floating
  point on the DPU (the slow Fig. 4.2(a) path) or is replaced by the
  host-built Algorithm 1 LUT (Fig. 4.2(b)); the binary temporaries return
  to the host, which runs the FC + Softmax classifier.
* The batch's image buffer is divided by images-per-DPU to choose the DPU
  count; all chosen DPUs run in parallel, so a full batch finishes in the
  time of one DPU (Section 4.1.3).

The cost recipe (:func:`charge_ebnn_costs`) is the single source of truth
for eBNN DPU cycles: the functional kernel and the closed-form sweeps both
charge through it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.core.lut import LookupTable, create_lut
from repro.dpu.attributes import UpmemAttributes
from repro.dpu.costs import Operation, OptLevel, Precision
from repro.dpu.kernel import GLOBAL_KERNELS, KernelContext
from repro.dpu.device import DpuImage
from repro.dpu.profiler import SubroutineProfile
from repro.errors import MappingError
from repro.host.alignment import align_up
from repro.host.runtime import DpuSystem, LaunchReport  # noqa: F401 (waves)
from repro.nn.binary import (
    MNIST_PACKED_PADDED_BYTES,
    pack_bits,
    pack_image,
    unpack_bits,
    unpack_image,
)
from repro.nn.models.ebnn import EbnnConfig, EbnnModel

#: The per-DPU image batch the paper uses (Section 4.1.3).
IMAGES_PER_DPU = 16

#: Tasklets the paper settles on for eBNN (one per staged image).
EBNN_TASKLETS = 16

#: Extra plain instructions accompanying each conv MAC beyond the address
#: multiply: two WRAM loads, the XNOR/accumulate pair, and loop overhead.
_CONV_EXTRA_INSTR_PER_MAC = 7

#: Plain instructions per max-pool output (4 loads, 3 compares, addressing).
_POOL_INSTR_PER_OUTPUT = 9

#: Plain instructions per LUT lookup beyond its address arithmetic.
_LUT_EXTRA_INSTR = 4


@dataclass(frozen=True)
class EbnnDpuLayout:
    """MRAM symbol layout shared by host and kernel."""

    config: EbnnConfig
    images_per_dpu: int = IMAGES_PER_DPU

    @property
    def image_bytes(self) -> int:
        """Padded packed bytes of one binarized image."""
        packed = -(-self.config.image_size**2 // 8)
        return align_up(packed)

    @property
    def images_bytes(self) -> int:
        return self.images_per_dpu * self.image_bytes

    @property
    def result_bytes_per_image(self) -> int:
        """Padded packed bytes of one image's binary feature tensor."""
        bits = self.config.feature_count
        return align_up(-(-bits // 8))

    @property
    def results_bytes(self) -> int:
        return self.images_per_dpu * self.result_bytes_per_image

    @property
    def lut_bytes(self) -> int:
        lo, hi = self.config.conv_range
        return align_up((hi - lo + 1) * self.config.filters)

    @property
    def weight_bytes(self) -> int:
        """Packed binary conv weights (one bit per tap)."""
        bits = self.config.filters * self.config.kernel**2
        return align_up(-(-bits // 8))

    def build_image(self, name: str = "ebnn") -> DpuImage:
        return DpuImage.from_symbol_layout(
            name,
            kernel_name="ebnn_conv_pool",
            layout=[
                ("images", self.images_bytes),
                ("results", self.results_bytes),
                ("lut", self.lut_bytes),
                ("weights", self.weight_bytes),
                ("meta", 8),  # actual image count (the padded-size protocol)
            ],
        )


def charge_ebnn_costs(
    ctx: KernelContext,
    config: EbnnConfig,
    layout: EbnnDpuLayout,
    n_images: int,
    *,
    use_lut: bool,
) -> None:
    """Charge the DPU cost of conv-pool(+BN/BinAct) for ``n_images``.

    -O0 array indexing performs a 32-bit multiply per element access (the
    ``__mulsi3`` Fig. 4.3(b) shows surviving even the LUT transformation);
    the float path charges the full BN+BinAct subroutine chain per pooled
    value, the mix Fig. 4.3(a) profiles.
    """
    conv_macs = n_images * config.conv_macs_per_image()
    pooled = n_images * config.bn_outputs_per_image()

    # Staging DMA: images arrive in one transfer per 2048-byte window.
    ctx.charge_streamed_dma(n_images * layout.image_bytes)
    ctx.charge_streamed_dma(layout.weight_bytes)

    # Convolution + pooling (both paths).  At -O0 every array access pays a
    # __mulsi3 index multiply (the subroutine Fig. 4.3(b) shows surviving);
    # -O3 strength-reduces indexing into induction variables.
    unoptimized = ctx.opt_level is OptLevel.O0
    if unoptimized:
        ctx.charge_call("__mulsi3", conv_macs)
    ctx.charge_instructions(_CONV_EXTRA_INSTR_PER_MAC * conv_macs)
    ctx.charge_instructions(_POOL_INSTR_PER_OUTPUT * pooled)

    if use_lut:
        # One LUT staging transfer, then a lookup per pooled value.
        ctx.charge_streamed_dma(layout.lut_bytes)
        if unoptimized:
            ctx.charge_call("__mulsi3", pooled)   # flat-index multiply
            ctx.charge_call("__muldi3", pooled)   # 64-bit address formation
        ctx.charge_instructions(_LUT_EXTRA_INSTR * pooled)
    else:
        # Fig. 4.2(a): the float BN + BinAct chain per pooled value.
        ctx.charge_call("__floatsisf", pooled)            # int -> float
        ctx.charge_op(Operation.ADD, Precision.FLOAT_32, 2 * pooled)  # +W0, +W4
        ctx.charge_op(Operation.SUB, Precision.FLOAT_32, pooled)      # -W1
        ctx.charge_op(Operation.DIV, Precision.FLOAT_32, pooled)      # /W2
        ctx.charge_op(Operation.MUL, Precision.FLOAT_32, pooled)      # *W3
        ctx.charge_call("__gesf2", pooled)                # BinAct >= 0
        ctx.charge_call("__ltsf2", pooled)                # saturation guard
        ctx.charge_call("__fixsfsi", pooled)              # float -> int bit
        if unoptimized:
            ctx.charge_call("__mulsi3", pooled)           # indexing
            ctx.charge_call("__muldi3", pooled)           # 64-bit addressing

    # Result write-back.
    ctx.charge_streamed_dma(n_images * layout.result_bytes_per_image)
    ctx.set_work_units(n_images)


@GLOBAL_KERNELS.register("ebnn_conv_pool")
def ebnn_conv_pool_kernel(
    ctx: KernelContext,
    *,
    model: EbnnModel,
    layout: EbnnDpuLayout,
    use_lut: bool,
) -> None:
    """The DPU program of the eBNN scheme (functional + cycle-charged).

    Reads packed images and the image count from MRAM, computes binary
    features (via the LUT read back from MRAM, or the float BN path), and
    writes packed feature bits to the ``results`` symbol.
    """
    config = model.config
    n_images = int(ctx.read_symbol_array("meta", np.uint32, 1)[0])
    if not 1 <= n_images <= layout.images_per_dpu:
        raise MappingError(
            f"DPU metadata declares {n_images} images; layout holds "
            f"up to {layout.images_per_dpu}"
        )

    lut = None
    if use_lut:
        lo, hi = config.conv_range
        raw = bytes(
            ctx.read_symbol_array("lut", np.uint8, layout.lut_bytes).tobytes()
        )
        lut = LookupTable.from_bytes(raw, lo, hi, config.filters)

    for index in range(n_images):
        raw = bytes(
            ctx.read_symbol_array(
                "images", np.uint8, layout.image_bytes,
                offset=index * layout.image_bytes,
            ).tobytes()
        )
        signs = unpack_image(raw, config.image_size, config.image_size)
        # conv_pool binarizes >= 0.5; feed {0,1} so signs survive unchanged.
        pooled = model.conv_pool((signs > 0).astype(np.float32))
        if use_lut:
            bits = lut.lookup_all(pooled)
        else:
            bits = model.bn_binact_float(pooled)
        packed = pack_bits(bits.reshape(-1).astype(np.uint8))
        padded = packed + bytes(layout.result_bytes_per_image - len(packed))
        ctx.write_symbol_array(
            "results",
            np.frombuffer(padded, dtype=np.uint8),
            offset=index * layout.result_bytes_per_image,
        )

    charge_ebnn_costs(ctx, config, layout, n_images, use_lut=use_lut)


@dataclass
class EbnnRunResult:
    """Outcome of one batched eBNN inference on the PIM system."""

    predictions: np.ndarray
    dpu_report: LaunchReport
    n_dpus: int
    n_images: int
    profile: SubroutineProfile
    host_seconds: float

    @property
    def dpu_seconds(self) -> float:
        return self.dpu_report.seconds

    @property
    def total_seconds(self) -> float:
        return self.dpu_seconds + self.host_seconds

    @property
    def seconds_per_image(self) -> float:
        return self.total_seconds / self.n_images


class EbnnPimRunner:
    """Host orchestration of the multi-image-per-DPU eBNN scheme."""

    #: Host-side FC+softmax time per image (a Xeon-class constant; the
    #: host overlaps this with nothing in the thesis's serial read-out).
    HOST_SECONDS_PER_IMAGE = 2.0e-6

    def __init__(
        self,
        system: DpuSystem,
        model: EbnnModel,
        *,
        use_lut: bool = True,
        images_per_dpu: int = IMAGES_PER_DPU,
        n_tasklets: int = EBNN_TASKLETS,
        opt_level: OptLevel = OptLevel.O3,
    ) -> None:
        if images_per_dpu < 1:
            raise MappingError(
                f"images_per_dpu must be >= 1, got {images_per_dpu}"
            )
        self.system = system
        self.model = model
        self.use_lut = use_lut
        self.n_tasklets = n_tasklets
        self.opt_level = opt_level
        self.layout = EbnnDpuLayout(model.config, images_per_dpu)
        staged = images_per_dpu * self.layout.image_bytes
        if staged > 2048:
            raise MappingError(
                f"{images_per_dpu} images need {staged} bytes of staging; "
                f"the DMA transfer cap is 2048 (Section 4.1.3)"
            )
        self.lut = (
            create_lut(model.bn, *model.config.conv_range) if use_lut else None
        )

    def run(self, images: np.ndarray) -> EbnnRunResult:
        """Classify a (n, H, W) batch through the PIM system.

        Batches larger than the system's capacity execute in waves: every
        available DPU processes its image block, results are gathered,
        and the next wave launches — total time is the sum of the waves.
        """
        n_images = images.shape[0]
        if n_images < 1:
            raise MappingError("empty image batch")
        per_dpu = self.layout.images_per_dpu
        n_dpus = self.system.dpus_needed_for(n_images, per_dpu)
        wave_capacity = n_dpus * per_dpu

        with telemetry.span(
            "ebnn.run",
            category="pipeline",
            n_images=n_images,
            n_dpus=n_dpus,
            use_lut=self.use_lut,
        ):
            dpu_set = self.system.allocate(n_dpus)
            try:
                waves = [
                    self._run_on(dpu_set, images[start : start + wave_capacity])
                    for start in range(0, n_images, wave_capacity)
                ]
            finally:
                self.system.free(dpu_set)
        if len(waves) == 1:
            return waves[0]
        return self._merge_waves(waves)

    def _merge_waves(self, waves: list["EbnnRunResult"]) -> "EbnnRunResult":
        """Combine sequential wave results into one batch result."""
        combined_profile = SubroutineProfile()
        for wave in waves:
            combined_profile = combined_profile.merged_with(wave.profile)
        total_cycles = sum(w.dpu_report.cycles for w in waves)
        slowest = max(waves, key=lambda w: w.dpu_report.cycles)
        report = LaunchReport(
            cycles=total_cycles,
            seconds=self.system.attributes.cycles_to_seconds(total_cycles),
            per_dpu_cycles=slowest.dpu_report.per_dpu_cycles,
            n_dpus=slowest.dpu_report.n_dpus,
            n_tasklets=slowest.dpu_report.n_tasklets,
            fault_policy=slowest.dpu_report.fault_policy,
            outcomes=[o for w in waves for o in w.dpu_report.outcomes],
        )
        return EbnnRunResult(
            predictions=np.concatenate([w.predictions for w in waves]),
            dpu_report=report,
            n_dpus=slowest.n_dpus,
            n_images=sum(w.n_images for w in waves),
            profile=combined_profile,
            host_seconds=sum(w.host_seconds for w in waves),
        )

    def _run_on(self, dpu_set, images: np.ndarray) -> EbnnRunResult:
        with telemetry.span("ebnn.wave", category="pipeline",
                            n_images=images.shape[0]):
            return self._run_wave(dpu_set, images)

    def _run_wave(self, dpu_set, images: np.ndarray) -> EbnnRunResult:
        layout = self.layout
        n_images = images.shape[0]
        per_dpu = layout.images_per_dpu
        dpu_set.load(layout.build_image())

        # Distribute packed image blocks and per-DPU counts.
        blocks: list[bytes] = []
        counts: list[int] = []
        for d in range(len(dpu_set)):
            chunk = images[d * per_dpu : (d + 1) * per_dpu]
            packed = b"".join(
                pack_image(img).ljust(layout.image_bytes, b"\0") for img in chunk
            )
            blocks.append(packed.ljust(layout.images_bytes, b"\0"))
            counts.append(len(chunk))
        dpu_set.scatter("images", [np.frombuffer(b, dtype=np.uint8) for b in blocks])
        dpu_set.scatter(
            "meta",
            [np.array([c, 0], dtype=np.uint32) for c in counts],
        )
        if self.use_lut:
            lut_raw = self.lut.to_bytes().ljust(layout.lut_bytes, b"\0")
            dpu_set.broadcast("lut", np.frombuffer(lut_raw, dtype=np.uint8))

        report = dpu_set.launch(
            n_tasklets=self.n_tasklets,
            opt_level=self.opt_level,
            model=self.model,
            layout=layout,
            use_lut=self.use_lut,
        )

        # Serial host read-out and classification (Section 4.1.3's flow).
        host_seconds = self.HOST_SECONDS_PER_IMAGE * n_images
        with telemetry.span(
            "ebnn.host_classify", n_images=n_images,
            host_seconds=host_seconds,
        ):
            predictions = np.zeros(n_images, dtype=np.int64)
            profile = SubroutineProfile()
            for d, dpu in enumerate(dpu_set):
                # A DPU isolated by the fault policy has no result for
                # this launch; its (restored, pre-launch) results symbol
                # still classifies, just from zeroed features.
                if dpu.last_result is not None:
                    profile = profile.merged_with(dpu.last_result.profile)
                for i in range(counts[d]):
                    raw = dpu.read_symbol(
                        "results",
                        layout.result_bytes_per_image,
                        offset=i * layout.result_bytes_per_image,
                    )
                    bits = unpack_bits(raw, self.model.config.feature_count)
                    cfg = self.model.config
                    features = bits.reshape(cfg.filters, cfg.pooled_out, cfg.pooled_out)
                    label, _ = self.model.classify_features(features)
                    predictions[d * per_dpu + i] = label
            telemetry.advance_sim(host_seconds)

        return EbnnRunResult(
            predictions=predictions,
            dpu_report=report,
            n_dpus=len(dpu_set),
            n_images=n_images,
            profile=profile,
            host_seconds=host_seconds,
        )


def ebnn_dpu_cycles(
    config: EbnnConfig,
    *,
    n_images: int = IMAGES_PER_DPU,
    n_tasklets: int = EBNN_TASKLETS,
    opt_level: OptLevel = OptLevel.O3,
    use_lut: bool = True,
    images_per_dpu: int = IMAGES_PER_DPU,
) -> float:
    """Closed-form DPU cycles for one eBNN batch (no functional compute).

    Shares :func:`charge_ebnn_costs` with the kernel, so sweeps (Figs. 4.4
    and 4.7) and functional runs can never drift apart.
    """
    from repro.dpu.memory import Mram, Wram

    layout = EbnnDpuLayout(config, images_per_dpu)
    ctx = KernelContext(
        Mram(), Wram(), n_tasklets=n_tasklets, opt_level=opt_level
    )
    charge_ebnn_costs(ctx, config, layout, n_images, use_lut=use_lut)
    return ctx.elapsed_cycles()


def ebnn_image_latency_seconds(
    config: EbnnConfig,
    attributes: UpmemAttributes,
    **kwargs,
) -> float:
    """Per-image DPU latency in seconds for a full 16-image batch."""
    n_images = kwargs.pop("n_images", IMAGES_PER_DPU)
    cycles = ebnn_dpu_cycles(config, n_images=n_images, **kwargs)
    return attributes.cycles_to_seconds(cycles) / n_images
