"""The alternative YOLOv3 mapping of Section 6.1 (future work).

The thesis proposes, as future work, squeezing *whole YOLOv3 inferences*
into single DPUs — emulating the eBNN multi-image scheme — and comparing
that against the per-layer GEMM-row mapping.  This module carries out the
comparison:

* **Feasibility**: a whole-inference DPU must hold every layer's weights
  plus the largest activation working set in its 64 MB MRAM.  Full
  YOLOv3's int16 weights alone are ~123 MB, so the scheme only becomes
  feasible for narrower variants — a quantitative answer to the thesis's
  "what size of CNN suits UPMEM" question.
* **Throughput/latency trade**: the row mapping minimizes *latency* (all
  filter rows in parallel, layers serialized); the whole-image mapping
  maximizes *throughput* (2560 independent inferences in flight) at the
  cost of enormous single-image latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mapping_yolo import (
    AccumulatorPolicy,
    charge_gemm_row_costs,
    yolo_network_timing,
)
from repro.dpu.attributes import UPMEM_ATTRIBUTES, UpmemAttributes
from repro.dpu.costs import OptLevel
from repro.dpu.kernel import KernelContext
from repro.dpu.memory import Mram, Wram
from repro.errors import MappingError
from repro.nn.models.darknet import Yolov3Model

#: Bytes per quantized weight/activation element (int16).
ELEMENT_BYTES = 2


def weight_bytes(model: Yolov3Model) -> int:
    """MRAM bytes for every conv layer's quantized weights."""
    return sum(
        plan.gemm.m * plan.gemm.k * ELEMENT_BYTES for plan in model.plans
    )


def peak_activation_bytes(model: Yolov3Model) -> int:
    """Largest per-layer working set: im2col input plus output row block."""
    peak = 0
    for plan in model.plans:
        shape = plan.gemm
        working = (shape.k * shape.n + shape.m * shape.n) * ELEMENT_BYTES
        peak = max(peak, working)
    return peak


def single_dpu_footprint_bytes(model: Yolov3Model) -> int:
    """Total MRAM a whole-inference DPU needs."""
    return weight_bytes(model) + peak_activation_bytes(model)


def fits_single_dpu(
    model: Yolov3Model, attributes: UpmemAttributes = UPMEM_ATTRIBUTES
) -> bool:
    """Whether one DPU can hold a whole inference (the feasibility gate)."""
    return single_dpu_footprint_bytes(model) <= attributes.mram_bytes


def whole_image_dpu_cycles(
    model: Yolov3Model,
    *,
    n_tasklets: int = 11,
    opt_level: OptLevel = OptLevel.O3,
) -> float:
    """Cycles for ONE DPU to run ALL layers of one inference serially.

    Each layer costs its full M filter rows on this single DPU; the same
    cost recipe as the row mapping keeps the two schemes comparable.
    """
    ctx = KernelContext(
        Mram(), Wram(), n_tasklets=n_tasklets, opt_level=opt_level
    )
    for plan in model.plans:
        shape = plan.gemm
        policy = AccumulatorPolicy.for_shape(shape)
        for _ in range(shape.m):
            charge_gemm_row_costs(ctx, shape, policy=policy)
    return ctx.elapsed_cycles()


@dataclass(frozen=True)
class SchemeComparison:
    """Section 6.1's mapping comparison, quantified."""

    feasible: bool
    footprint_bytes: int
    mram_bytes: int
    row_latency_s: float
    row_throughput_fps: float
    row_dpus: int
    whole_latency_s: float | None
    whole_throughput_fps: float | None

    @property
    def throughput_advantage(self) -> float | None:
        """Whole-image throughput relative to the row mapping's."""
        if self.whole_throughput_fps is None:
            return None
        return self.whole_throughput_fps / self.row_throughput_fps

    @property
    def latency_penalty(self) -> float | None:
        """Whole-image single-frame latency relative to the row mapping's."""
        if self.whole_latency_s is None:
            return None
        return self.whole_latency_s / self.row_latency_s


def compare_mappings(
    model: Yolov3Model,
    *,
    attributes: UpmemAttributes = UPMEM_ATTRIBUTES,
    opt_level: OptLevel = OptLevel.O3,
    n_tasklets: int = 11,
) -> SchemeComparison:
    """Row-per-DPU vs whole-image-per-DPU for one network variant."""
    row_timing = yolo_network_timing(
        model,
        attributes=attributes,
        opt_level=opt_level,
        n_tasklets=n_tasklets,
    )
    row_latency = row_timing.total_seconds
    if row_latency <= 0:
        raise MappingError("row mapping produced a non-positive latency")
    row_dpus = row_timing.total_dpu_demand
    # The row mapping pipelines poorly across images (layers hold the
    # DPUs serially), so its throughput is ~1/latency.
    row_throughput = 1.0 / row_latency

    if not fits_single_dpu(model, attributes):
        return SchemeComparison(
            feasible=False,
            footprint_bytes=single_dpu_footprint_bytes(model),
            mram_bytes=attributes.mram_bytes,
            row_latency_s=row_latency,
            row_throughput_fps=row_throughput,
            row_dpus=row_dpus,
            whole_latency_s=None,
            whole_throughput_fps=None,
        )

    cycles = whole_image_dpu_cycles(
        model, n_tasklets=n_tasklets, opt_level=opt_level
    )
    whole_latency = attributes.cycles_to_seconds(cycles)
    whole_throughput = attributes.n_dpus / whole_latency
    return SchemeComparison(
        feasible=True,
        footprint_bytes=single_dpu_footprint_bytes(model),
        mram_bytes=attributes.mram_bytes,
        row_latency_s=row_latency,
        row_throughput_fps=row_throughput,
        row_dpus=row_dpus,
        whole_latency_s=whole_latency,
        whole_throughput_fps=whole_throughput,
    )
