"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DpuError(ReproError):
    """Base class for errors raised by the DPU simulator."""


class DpuMemoryError(DpuError):
    """Out-of-bounds, misaligned, or oversized DPU memory access."""


class DpuAlignmentError(DpuMemoryError):
    """An access or transfer violated an alignment constraint."""


class DpuFaultError(DpuError):
    """The DPU program performed an illegal operation (bad opcode, trap)."""


class DpuLimitError(DpuError):
    """A hardware limit was exceeded (tasklets, WRAM stack, IRAM size)."""


class DpuHangError(DpuError):
    """The DPU exceeded its straggler deadline (hung past the cycle budget)."""


class AssemblerError(DpuError):
    """The DPU assembler rejected a source program."""


class HostError(ReproError):
    """Base class for errors raised by the host runtime."""


class AllocationError(HostError):
    """The host asked for more DPUs (or ranks) than the system provides."""


class TransferError(HostError):
    """A host<->DPU transfer violated size, alignment, or symbol rules."""


class SymbolError(TransferError):
    """A transfer referenced a symbol the loaded DPU program does not define."""


class LaunchError(HostError):
    """A DPU launch failed (no program loaded, bad tasklet count, fault)."""


class ModelError(ReproError):
    """Invalid parameters passed to the analytical PIM performance model."""


class WorkloadError(ReproError):
    """Invalid or unknown workload definition (layer table, op counts)."""


class QuantizationError(ReproError):
    """Invalid quantization parameters (bits, scale, ranges)."""


class MappingError(ReproError):
    """A CNN-to-DPU mapping scheme received an unmappable configuration."""


class ServeError(ReproError):
    """The online serving layer was misconfigured or misused."""


class ExperimentError(ReproError):
    """An experiment driver was misconfigured or an unknown id requested."""
