"""repro: a reproduction of Das, "Implementation and Evaluation of Deep
Neural Networks in Commercially Available Processing in Memory Hardware"
(RIT, 2022).

The package provides four layers, each importable on its own:

* :mod:`repro.dpu` / :mod:`repro.host` — a simulated UPMEM PIM platform
  (DPU microarchitecture, memories, toolchain stand-ins, host SDK).
* :mod:`repro.nn` / :mod:`repro.datasets` — the CNN substrate: quantized
  GEMM/conv layers, eBNN and YOLOv3 models, synthetic datasets.
* :mod:`repro.core` — the paper's contribution: CNN-to-DPU mapping schemes
  (multi-image eBNN, GEMM-row YOLOv3) and the Algorithm 1 LUT transform.
* :mod:`repro.pimmodel` — the Chapter 5 analytical cross-PIM performance
  model with its architecture registry.

``repro.experiments`` regenerates every table and figure of the paper;
see DESIGN.md for the experiment index and EXPERIMENTS.md for
paper-vs-reproduction numbers.
"""

__version__ = "1.0.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
