"""Baselines the paper compares against (Intel Xeon CPU)."""

from repro.baselines.cpu import (
    IMAGES_RESIDENT_PER_DPU,
    CpuBaseline,
    XeonModel,
    dpu_speedup_curve,
)

__all__ = [
    "IMAGES_RESIDENT_PER_DPU",
    "CpuBaseline",
    "XeonModel",
    "dpu_speedup_curve",
]
