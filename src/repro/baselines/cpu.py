"""The CPU baseline: an Intel Xeon class comparator (Fig. 4.7(c)).

The thesis compares the fully parallel DPU system against a single Intel
Xeon CPU on the eBNN workload and finds the PIM speedup grows linearly
with the DPU count.  This module provides

* a functional CPU execution path (the same numpy reference model —
  this is literally what a CPU does), and
* a parameterized Xeon latency model, so the speedup curve is
  deterministic and documented rather than host-machine-dependent.

The latency model: a Xeon core retires ``ops_per_cycle`` eBNN binary-MAC
equivalents per cycle at ``frequency_hz``; one inference costs the model's
operation count plus a fixed per-image overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.nn.models.ebnn import EbnnConfig, EbnnModel


@dataclass(frozen=True)
class XeonModel:
    """Latency model of the baseline CPU."""

    frequency_hz: float = 2.4e9
    ops_per_cycle: float = 4.0       # SIMD-assisted binary MACs per cycle
    per_image_overhead_s: float = 5e-6

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0 or self.ops_per_cycle <= 0:
            raise WorkloadError("Xeon model parameters must be positive")
        if self.per_image_overhead_s < 0:
            raise WorkloadError("negative per-image overhead")

    def ebnn_image_seconds(self, config: EbnnConfig) -> float:
        """Single-image eBNN inference latency on the CPU."""
        ops = config.conv_macs_per_image() + 8 * config.bn_outputs_per_image()
        return ops / (self.ops_per_cycle * self.frequency_hz) + self.per_image_overhead_s

    def ebnn_batch_seconds(self, config: EbnnConfig, n_images: int) -> float:
        """Serial batch latency (the single-CPU comparison of Fig. 4.7(c))."""
        if n_images < 1:
            raise WorkloadError(f"need at least one image, got {n_images}")
        return n_images * self.ebnn_image_seconds(config)


class CpuBaseline:
    """Functional + modeled CPU execution of eBNN."""

    def __init__(self, model: EbnnModel, xeon: XeonModel | None = None) -> None:
        self.model = model
        self.xeon = xeon or XeonModel()

    def predict_batch(self, images: np.ndarray) -> np.ndarray:
        """Run the reference inference (what the Xeon computes)."""
        return self.model.predict_batch(images)

    def batch_seconds(self, n_images: int) -> float:
        return self.xeon.ebnn_batch_seconds(self.model.config, n_images)


def dpu_speedup_curve(
    cpu_image_seconds: float,
    dpu_image_seconds: float,
    dpu_counts: list[int],
) -> list[tuple[int, float]]:
    """Fig. 4.7(c): speedup over the CPU as DPUs are added.

    Every DPU serves images independently, so system throughput — and the
    speedup over one CPU — scales linearly in the DPU count.
    """
    if cpu_image_seconds <= 0 or dpu_image_seconds <= 0:
        raise WorkloadError("latencies must be positive")
    per_dpu_ratio = cpu_image_seconds / dpu_image_seconds
    curve = []
    for count in dpu_counts:
        if count < 1:
            raise WorkloadError(f"bad DPU count {count}")
        curve.append((count, count * per_dpu_ratio))
    return curve


#: Images one DPU can hold resident in MRAM (Section 4.3.2: 316800 images
#: of 28x28 fit alongside the program's buffers in 64 MB).
IMAGES_RESIDENT_PER_DPU = 316_800
