"""Extending the framework: a two-block (deeper) eBNN.

The thesis's eBNN has one conv-pool block; its future work asks how
deeper binary networks behave on the platform.  This example stacks a
second binary conv-pool block using the multi-channel substrate, builds a
*per-block* Algorithm 1 LUT (block 2's LUT must cover the wider
[-k*k*C, +k*k*C] range its multi-channel conv produces), and estimates
the DPU cost of each block with the same recipe the single-block mapping
uses.

Run:  python examples/deep_ebnn.py
"""

import numpy as np

from repro.core.lut import create_lut
from repro.datasets import generate_batch
from repro.dpu.attributes import UPMEM_ATTRIBUTES
from repro.dpu.costs import OptLevel, Operation, Precision
from repro.dpu.kernel import KernelContext
from repro.dpu.memory import Mram, Wram
from repro.nn.binary import (
    binarize,
    binary_conv2d,
    binary_conv2d_multi,
    conv_result_range,
)
from repro.nn.layers import BatchNormParams, maxpool2d_int

BLOCK1_FILTERS = 8
BLOCK2_FILTERS = 16


def make_bn(n, seed):
    rng = np.random.default_rng(seed)
    return BatchNormParams(
        w0=rng.uniform(-0.5, 0.5, n),
        w1=rng.uniform(-2, 2, n),
        w2=rng.uniform(0.5, 3, n),
        w3=rng.uniform(0.5, 1.5, n),
        w4=rng.uniform(-0.5, 0.5, n),
    )


def block_cost_cycles(conv_macs: int, pooled: int, lut_bytes: int,
                      n_tasklets: int = 16) -> float:
    """DPU cycles of one binary conv-pool-LUT block (the mapping recipe)."""
    ctx = KernelContext(
        Mram(), Wram(), n_tasklets=n_tasklets, opt_level=OptLevel.O3
    )
    ctx.charge_instructions(7 * conv_macs)   # loads + XNOR chain per MAC
    ctx.charge_instructions(9 * pooled)      # max-pool
    ctx.charge_streamed_dma(lut_bytes)       # stage the block's LUT
    ctx.charge_instructions(4 * pooled)      # LUT lookups
    return ctx.elapsed_cycles()


def main() -> None:
    rng = np.random.default_rng(0)
    batch = generate_batch(4, seed=3)
    image = binarize(batch.normalized()[0], 0.5)

    # ---- block 1: 1 -> 8 filters over 28x28 ---------------------------- #
    w1 = rng.choice(np.array([-1, 1], dtype=np.int8),
                    size=(BLOCK1_FILTERS, 3, 3))
    conv1 = binary_conv2d(image, w1, padding=1)
    pool1 = maxpool2d_int(conv1, 2)
    lo1, hi1 = conv_result_range(3)
    lut1 = create_lut(make_bn(BLOCK1_FILTERS, 1), lo1, hi1)
    bits1 = lut1.lookup_all(pool1)
    print(f"block 1: conv range [{lo1}, {hi1}], LUT {lut1.size_bytes} B, "
          f"features {bits1.shape}")

    # ---- block 2: 8 -> 16 filters over the 14x14 binary features ------- #
    feature_signs = np.where(bits1 > 0, 1, -1).astype(np.int8)
    w2 = rng.choice(np.array([-1, 1], dtype=np.int8),
                    size=(BLOCK2_FILTERS, BLOCK1_FILTERS, 3, 3))
    conv2 = binary_conv2d_multi(feature_signs, w2, padding=1)
    pool2 = maxpool2d_int(conv2, 2)
    lo2, hi2 = conv_result_range(3, in_channels=BLOCK1_FILTERS)
    lut2 = create_lut(make_bn(BLOCK2_FILTERS, 2), lo2, hi2)
    bits2 = lut2.lookup_all(pool2)
    print(f"block 2: conv range [{lo2}, {hi2}] (x{BLOCK1_FILTERS} wider), "
          f"LUT {lut2.size_bytes} B, features {bits2.shape}")

    # ---- DPU cost of each block ---------------------------------------- #
    macs1 = BLOCK1_FILTERS * 28 * 28 * 9
    macs2 = BLOCK2_FILTERS * BLOCK1_FILTERS * 14 * 14 * 9
    cycles1 = block_cost_cycles(macs1, BLOCK1_FILTERS * 14 * 14,
                                lut1.size_bytes)
    cycles2 = block_cost_cycles(macs2, BLOCK2_FILTERS * 7 * 7,
                                lut2.size_bytes)
    to_ms = lambda c: UPMEM_ATTRIBUTES.cycles_to_seconds(c) * 1e3
    print(f"\nper-image DPU cost: block 1 {to_ms(cycles1):.3f} ms "
          f"({macs1} MACs), block 2 {to_ms(cycles2):.3f} ms ({macs2} MACs)")
    print(f"depth doubles the blocks but multiplies block-2 work by the "
          f"channel count: total {to_ms(cycles1 + cycles2):.3f} ms/image")
    print("\nthe per-block LUT keeps every block float-free on the DPU — "
          "the Algorithm 1 transform generalizes to any depth")


if __name__ == "__main__":
    main()
