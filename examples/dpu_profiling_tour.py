"""A tour of the DPU profiling instruments (paper Chapter 3).

Reproduces, interactively, the three measurements the thesis builds its
methodology on:

1. the perfcounter bracket around single operations (Fig. 3.1/Table 3.1),
2. the MRAM access cost law (Eq. 3.4),
3. the subroutine occurrence profile of an fp-heavy program (Fig. 3.2).

Run:  python examples/dpu_profiling_tour.py
"""

from repro.dpu import microbench
from repro.dpu.costs import (
    Operation,
    Precision,
    TABLE_3_1_MEASURED,
    mram_access_cycles,
)


def perfcounter_measurements() -> None:
    print("=== Table 3.1: perfcounter measurements on the simulated DPU ===")
    print(f"{'precision':24s} {'op':4s} {'paper':>7s} {'sim':>7s} {'delta':>6s}")
    for precision in (
        Precision.FIXED_8, Precision.FIXED_16,
        Precision.FIXED_32, Precision.FLOAT_32,
    ):
        for operation in (Operation.ADD, Operation.MUL,
                          Operation.SUB, Operation.DIV):
            paper = TABLE_3_1_MEASURED[(operation, precision)]
            sim = microbench.measure_operation_cycles(operation, precision)
            print(f"{precision.value:24s} {operation.value:4s} "
                  f"{paper:7d} {sim:7d} {sim - paper:+6d}")
    print()


def mram_cost_law() -> None:
    print("=== Eq. 3.4: MRAM access cycles = 25 + bytes/2 ===")
    for size in (8, 64, 512, 2048):
        cycles = mram_access_cycles(size)
        print(f"  {size:5d} bytes -> {cycles:5d} cycles "
              f"({cycles / size:.2f} cycles/byte)")
    print("  amortization is why kernels stage 2048-byte transfers\n")


def subroutine_profile() -> None:
    print("=== Fig. 3.2: #occ profile of an fp-heavy DPU program ===")
    result = microbench.run_float_profile(n_elements=16)
    print(f"{'subroutine':14s} {'#occ':>5s} {'cycles@1 tasklet':>18s}")
    for name, occurrences in result.profile.as_rows():
        record = result.profile.records[name]
        print(f"{name:14s} {occurrences:5d} "
              f"{record.cycles_single_tasklet():18d}")
    print(f"\nprogram total: {result.cycles:.0f} cycles, "
          f"{result.instructions_retired} instructions retired")
    print("conclusion (Section 3.3.1): keep high-precision computation "
          "off the DPU — which is what the Chapter 4 LUT transform does")


if __name__ == "__main__":
    perfcounter_measurements()
    mram_cost_law()
    subroutine_profile()
