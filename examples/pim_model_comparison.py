"""Cross-PIM comparison with the Chapter 5 analytical model.

Uses the generic model (Eqs. 5.1-5.10) to compare UPMEM against the
theoretical PIM architectures the thesis surveys — pPIM, DRISA, SCOPE,
LACC — on CNN inference, and explores the operand-width crossover of
Fig. 5.6 plus a custom what-if architecture.

Run:  python examples/pim_model_comparison.py
"""

from repro.pimmodel import (
    ALEXNET,
    EBNN,
    YOLOV3,
    PimArchitecture,
    analytical_latency,
    alexnet_total_times,
    fig_5_6_comparison,
    table_5_4,
)
from repro.pimmodel.benchmarking import benchmark_row


def headline_table() -> None:
    print("=== Table 5.4: eBNN / YOLOv3 across seven PIMs (8-bit) ===")
    print(f"{'architecture':16s} {'eBNN s':>10s} {'YOLO s':>10s} "
          f"{'eBNN fps/W':>12s} {'YOLO fps/W':>12s}")
    for row in table_5_4():
        print(f"{row.architecture:16s} {row.ebnn_latency_s:10.2e} "
              f"{row.yolo_latency_s:10.2e} "
              f"{row.ebnn_throughput_per_watt:12.2e} "
              f"{row.yolo_throughput_per_watt:12.2e}")
    print()


def crossover() -> None:
    print("=== Fig. 5.6: who wins at which operand width ===")
    comparison = fig_5_6_comparison()
    for bits in (4, 8, 16, 32):
        cycles = {name: comparison[name][bits] for name in comparison}
        winner = min(cycles, key=cycles.get)
        line = "  ".join(f"{n}={c:>7.0f}" for n, c in cycles.items())
        print(f"  {bits:2d}-bit: {line}   -> {winner}")
    print("  (LUT designs blow up with width; UPMEM's subroutines take "
          "over at 32 bits)\n")


def memory_model() -> None:
    print("=== Eq. 5.1 totals for 8-bit AlexNet (compute + memory) ===")
    for name, total in alexnet_total_times().items():
        print(f"  {name:6s}: {total:.3e} s")
    print()


def what_if() -> None:
    print("=== what-if: a hypothetical 1 GHz, 8192-PE LUT PIM ===")
    custom = PimArchitecture(
        name="HYPO-LUT",
        category="lut",
        power_chip_w=12.0,
        area_chip_mm2=80.0,
        n_pes=8192,
        frequency_hz=1.0e9,
        mac_cycles_8bit=8,
    )
    for workload in (EBNN, ALEXNET, YOLOV3):
        latency = analytical_latency(custom, workload)
        print(f"  {workload.name:8s}: {latency:.3e} s")
    row = benchmark_row(custom)
    print(f"  eBNN throughput: {row.ebnn_throughput_per_watt:.2e} fps/W, "
          f"{row.ebnn_throughput_per_mm2:.2e} fps/mm^2")
    print("  (plug your own architecture parameters into "
          "repro.pimmodel.PimArchitecture)")


if __name__ == "__main__":
    headline_table()
    crossover()
    memory_model()
    what_if()
