"""eBNN digit classification on the PIM system (paper Section 4.1).

Demonstrates the multi-image-per-DPU mapping scheme end to end:

* synthesizes a batch of MNIST-like digits,
* builds the Algorithm 1 LUT on the host (removing the float BN+BinAct
  from the DPU),
* bit-packs and scatters 16 images per DPU, launches 16 tasklets,
* classifies the returned binary features with the host-side softmax,
* and compares timing/profiles against the float-BN variant and the
  Xeon CPU baseline.

Run:  python examples/ebnn_mnist.py
"""

import numpy as np

from repro.baselines.cpu import CpuBaseline, XeonModel, dpu_speedup_curve
from repro.core.mapping_ebnn import EbnnPimRunner, IMAGES_PER_DPU
from repro.datasets import generate_batch
from repro.dpu.attributes import UPMEM_ATTRIBUTES
from repro.dpu.costs import OptLevel
from repro.host.runtime import DpuSystem
from repro.nn.models.ebnn import EbnnModel

N_IMAGES = 64


def main() -> None:
    model = EbnnModel()
    batch = generate_batch(N_IMAGES, seed=7)
    images = batch.normalized()
    system = DpuSystem(UPMEM_ATTRIBUTES.scaled(8))

    print(f"eBNN: {model.config.filters} filters, "
          f"{model.config.image_size}x{model.config.image_size} inputs, "
          f"{IMAGES_PER_DPU} images per DPU\n")

    # --- PIM execution, LUT architecture (Fig. 4.2(b)) ----------------- #
    lut_runner = EbnnPimRunner(system, model, use_lut=True,
                               opt_level=OptLevel.O3)
    lut_result = lut_runner.run(images)
    print(f"LUT architecture: {lut_result.n_dpus} DPUs, "
          f"DPU time {lut_result.dpu_seconds * 1e3:.2f} ms, "
          f"{lut_result.seconds_per_image * 1e3:.3f} ms/image")
    print(f"  subroutines on the DPU: "
          f"{', '.join(sorted(lut_result.profile.records)) or '(none)'}")

    # --- PIM execution, float BN on the DPU (Fig. 4.2(a)) -------------- #
    float_runner = EbnnPimRunner(system, model, use_lut=False,
                                 opt_level=OptLevel.O3)
    float_result = float_runner.run(images)
    print(f"float BN+BinAct:  DPU time {float_result.dpu_seconds * 1e3:.2f} ms "
          f"({float_result.dpu_seconds / lut_result.dpu_seconds:.2f}x slower)")
    print(f"  float subroutines on the DPU: "
          f"{', '.join(float_result.profile.float_subroutine_names())}")

    # --- functional equivalence ---------------------------------------- #
    cpu = CpuBaseline(model)
    reference = cpu.predict_batch(images)
    assert np.array_equal(lut_result.predictions, reference)
    assert np.array_equal(float_result.predictions, reference)
    agreement = float(np.mean(lut_result.predictions == batch.labels))
    print(f"\nPIM == CPU baseline on all {N_IMAGES} images "
          f"(untrained synthetic weights; {agreement:.0%} label agreement "
          f"is not a trained-accuracy claim)")

    # --- CPU comparison (Fig. 4.7(c)) ----------------------------------- #
    xeon = XeonModel()
    cpu_image_s = xeon.ebnn_image_seconds(model.config)
    dpu_image_s = lut_result.dpu_seconds / lut_result.n_images * lut_result.n_dpus
    print(f"\nXeon model: {cpu_image_s * 1e6:.1f} us/image; one DPU: "
          f"{dpu_image_s * 1e6:.1f} us/image")
    print("speedup over the CPU as DPUs scale (linear, Fig. 4.7(c)):")
    for count, speedup in dpu_speedup_curve(
        cpu_image_s, dpu_image_s, [1, 64, 512, 2560]
    ):
        print(f"  {count:5d} DPUs -> {speedup:8.1f}x")


if __name__ == "__main__":
    main()
