"""Design-space exploration with the Chapter 5 model.

Uses the analytical PIM model as a *design tool*: sweep a grid of
hypothetical PIM designs (PE count x frequency x per-MAC cycles x power)
and find the Pareto-efficient points for YOLOv3 inference — latency vs.
energy — with the thesis's seven architectures placed on the same chart
for reference.

Run:  python examples/design_space.py
"""

from repro.pimmodel import PimArchitecture, analytical_latency
from repro.pimmodel.benchmarking import latency_for
from repro.pimmodel.architectures import TABLE_5_4_ARCHITECTURES
from repro.pimmodel.workloads import YOLOV3


def candidate_grid() -> list[PimArchitecture]:
    """A grid of plausible DRAM-PIM design points."""
    designs = []
    for n_pes in (256, 1024, 4096, 16384):
        for freq_mhz in (150, 500, 1250):
            for mac_cycles in (8, 44, 211):
                # dynamic power: ~ C V^2 f with voltage tracking frequency,
                # so the energy/latency sweep exposes a real trade-off
                power = 0.5 + 5e-5 * n_pes * (freq_mhz / 150) ** 2
                area = 20 + 0.002 * n_pes
                designs.append(PimArchitecture(
                    name=f"pe{n_pes}_f{freq_mhz}_c{mac_cycles}",
                    category="hypothetical",
                    power_chip_w=power,
                    area_chip_mm2=area,
                    n_pes=n_pes,
                    frequency_hz=freq_mhz * 1e6,
                    mac_cycles_8bit=mac_cycles,
                ))
    return designs


def pareto_front(points: list[tuple[float, float, str]]) -> list[tuple[float, float, str]]:
    """Minimize both coordinates: keep the non-dominated points."""
    front = []
    for latency, energy, name in sorted(points):
        if not front or energy < front[-1][1]:
            front.append((latency, energy, name))
    return front


def main() -> None:
    print("=== design-space sweep: YOLOv3 latency vs energy ===")
    points = []
    for design in candidate_grid():
        latency = analytical_latency(design, YOLOV3)
        energy = latency * design.power_chip_w
        points.append((latency, energy, design.name))

    front = pareto_front(points)
    print(f"{len(points)} design points, {len(front)} on the Pareto front:")
    for latency, energy, name in front:
        print(f"  {name:22s} latency {latency:9.3e} s  energy {energy:9.3e} J")

    print("\nthe thesis's architectures on the same axes:")
    for arch in TABLE_5_4_ARCHITECTURES:
        latency = latency_for(arch, YOLOV3)
        energy = latency * arch.normalization_power_w("yolov3")
        dominated = any(
            fl <= latency and fe <= energy for fl, fe, _ in front
        )
        marker = "dominated by the grid" if dominated else "on/beyond the front"
        print(f"  {arch.name:16s} latency {latency:9.3e} s  "
              f"energy {energy:9.3e} J   ({marker})")

    print("\ntakeaway: the model turns the thesis's comparison into a "
          "design tool — cycle-per-MAC (the LUT vs bitwise vs pipeline "
          "choice) dominates the front at every PE budget")


if __name__ == "__main__":
    main()
