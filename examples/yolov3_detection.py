"""YOLOv3 object detection through the PIM system (paper Section 4.2).

Two parts:

1. **Functional**: a width-scaled YOLOv3 runs end to end with every conv
   layer's GEMM quantized, distributed one-row-per-DPU (Fig. 4.6),
   executed by DPU kernels and gathered back; detections are decoded and
   compared against the float reference.
2. **Full-scale latency**: the closed-form mapping model reports
   per-layer and total single-image latency of the real 416x416 network
   under the paper's best configuration (O3, 11 tasklets) and the three
   weaker Fig. 4.7(b) configurations.

Run:  python examples/yolov3_detection.py
"""

import numpy as np

from repro.core.mapping_yolo import YoloPimRunner, yolo_network_timing
from repro.datasets import generate_scene
from repro.dpu.attributes import UPMEM_ATTRIBUTES
from repro.dpu.costs import OptLevel
from repro.host.runtime import DpuSystem
from repro.nn.models.darknet import Yolov3Model


def functional_demo() -> None:
    print("=== functional: scaled-down YOLOv3 through DPU kernels ===")
    model = Yolov3Model(64, width_scale=0.08, seed=3)
    scene = generate_scene(64, seed=9)
    system = DpuSystem(UPMEM_ATTRIBUTES.scaled(32))

    runner = YoloPimRunner(system, model)
    pim_outputs = runner.run(scene)
    ref_outputs = model.forward(scene)

    from repro.nn.detection import postprocess

    pim_boxes = postprocess(
        model.decode_detections(pim_outputs, conf_threshold=0.0),
        conf_threshold=0.6,
    )
    ref_boxes = postprocess(
        model.decode_detections(ref_outputs, conf_threshold=0.0),
        conf_threshold=0.6,
    )
    print(f"network: {model.conv_layer_count} conv layers, "
          f"{model.total_macs() / 1e6:.1f} M MACs at this scale")
    print(f"detections after NMS: PIM={len(pim_boxes)}  "
          f"float reference={len(ref_boxes)}")
    for box in pim_boxes[:5]:
        print(f"  class {box.class_id:3d} conf {box.confidence:.2f} "
              f"at ({box.x:.0f}, {box.y:.0f}) size {box.w:.0f}x{box.h:.0f}")

    worst = 0.0
    for pim, ref in zip(pim_outputs, ref_outputs):
        scale = max(float(np.abs(ref).max()), 1e-6)
        worst = max(worst, float(np.abs(pim - ref).max()) / scale)
    print(f"max relative deviation vs float reference: {worst:.3%} "
          f"(int16 per-layer quantization)\n")


def latency_demo() -> None:
    print("=== full-scale 416x416 latency under the Fig. 4.6 mapping ===")
    model = Yolov3Model(416)
    print(f"network: {model.conv_layer_count} conv layers, "
          f"{model.total_macs() / 1e9:.1f} G MACs, "
          f"widest layer {max(s.m for s in model.gemm_shapes())} filters "
          f"(= DPUs)\n")

    print("threading x optimization grid (Fig. 4.7(b)); paper best: ~65 s")
    for opt in (OptLevel.O0, OptLevel.O3):
        for tasklets in (1, 11):
            timing = yolo_network_timing(
                model, opt_level=opt, n_tasklets=tasklets
            )
            print(f"  {opt.name} {tasklets:2d} tasklets: "
                  f"{timing.total_seconds:7.1f} s/frame  "
                  f"(mean layer {timing.mean_layer_seconds:.2f} s, "
                  f"max {timing.max_layer_seconds:.2f} s)")

    best = yolo_network_timing(model, opt_level=OptLevel.O3, n_tasklets=11)
    print("\nslowest five layers at the best configuration:")
    for layer in sorted(best.layers, key=lambda l: -l.seconds)[:5]:
        shape = layer.shape
        print(f"  layer {layer.layer_index:3d}: {layer.seconds:6.2f} s  "
              f"M={shape.m:4d} N={shape.n:6d} K={shape.k:5d}  "
              f"ctmp in {layer.policy.value.upper()}")
    mram_share = sum(
        l.seconds for l in best.layers if l.policy.value == "mram"
    ) / best.total_seconds
    print(f"\n{mram_share:.0%} of the time is spent in MRAM-bound layers — "
          f"the Section 4.3.3 bottleneck")


if __name__ == "__main__":
    functional_demo()
    latency_demo()
