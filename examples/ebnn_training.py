"""Training the eBNN classifier, then deploying it to the PIM system.

The thesis runs inference with pre-trained eBNN weights it does not ship;
this example closes the loop offline: train the binary FC layer
(BinaryNet-style straight-through gradients) on synthetic digits, deploy
the signed weights, and run the trained network through the full PIM
pipeline — LUT, bit-packed staging, DPU kernels, host softmax.

Run:  python examples/ebnn_training.py
"""

import numpy as np

from repro.core.mapping_ebnn import EbnnPimRunner
from repro.core.planner import MappingPlanner
from repro.datasets import generate_batch
from repro.dpu.attributes import UPMEM_ATTRIBUTES
from repro.host.runtime import DpuSystem
from repro.nn.models.ebnn import EbnnModel
from repro.nn.train import EbnnTrainer


def main() -> None:
    model = EbnnModel()
    trainer = EbnnTrainer(model, learning_rate=0.2, epochs=100)

    train = generate_batch(600, seed=1)
    test = generate_batch(200, seed=999)

    print("training the binary FC layer on 600 synthetic digits...")
    report = trainer.train(train.normalized(), train.labels)
    print(f"  train accuracy {report.final_train_accuracy:.1%}, "
          f"final loss {report.loss_history[-1]:.3f} "
          f"({report.epochs} epochs)")

    test_accuracy = trainer.evaluate(test.normalized(), test.labels)
    print(f"  held-out accuracy {test_accuracy:.1%} "
          f"(binary weights, random binary conv features)\n")

    # Let the planner choose the mapping, then execute it.
    planner = MappingPlanner()
    plan = planner.plan_auto(model.config)
    decision = plan.decisions[0]
    print(f"planner: {decision.scheme.value}, {decision.n_tasklets} tasklets")
    print(f"  {decision.rationale}")
    print(f"  estimated batch latency: "
          f"{plan.total_seconds * 1e3:.2f} ms\n")

    system = DpuSystem(UPMEM_ATTRIBUTES.scaled(16))
    runner = EbnnPimRunner(system, model)
    result = runner.run(test.normalized())
    pim_accuracy = float(np.mean(result.predictions == test.labels))
    print(f"PIM execution: {result.n_dpus} DPUs, "
          f"{result.dpu_seconds * 1e3:.2f} ms DPU time")
    print(f"  PIM accuracy {pim_accuracy:.1%} "
          f"(identical to the host model: "
          f"{np.array_equal(result.predictions, model.predict_batch(test.normalized()))})")


if __name__ == "__main__":
    main()
