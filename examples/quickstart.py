"""Quickstart: your first program on the simulated UPMEM system.

Walks the full host/DPU workflow the UPMEM SDK teaches, on the simulator:

1. allocate a DPU set (``dpu_alloc``),
2. load a small assembly program (``dpu_load``) that sums an int32 array
   staged from MRAM into WRAM over multiple tasklets,
3. scatter per-DPU data (``dpu_prepare_xfer`` / ``dpu_push_xfer``),
4. launch and read results back.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.dpu.assembler import assemble
from repro.dpu.device import DpuImage, Symbol
from repro.host.runtime import DpuSystem
from repro.dpu.attributes import UPMEM_ATTRIBUTES

#: Each DPU sums this many int32 values.
N_VALUES = 256

# The DPU program: tasklet 0 DMAs the input from MRAM to WRAM, then every
# tasklet sums a strided share and stores its partial at WRAM[2048 + 4*tid].
SUM_PROGRAM = """
        tid  r1                  # which tasklet am I?
        bne  r1, r0, compute     # only tasklet 0 stages the data
        li   r2, 0               # WRAM destination
        li   r3, 0               # MRAM source (symbol "input" at 0)
        ldma r2, r3, 1024        # 256 x int32 = 1024 bytes, one transfer
compute:
        tid  r1
        lsli r4, r1, 2           # byte offset of this tasklet's first item
        li   r5, 0               # accumulator
        li   r6, 1024            # end of the array in WRAM
loop:
        bge  r4, r6, done
        lw   r7, r4, 0           # load input[i]
        add  r5, r5, r7
        addi r4, r4, 64          # stride = 16 tasklets x 4 bytes
        j    loop
done:
        tid  r1
        lsli r4, r1, 2
        li   r8, 2048
        add  r4, r4, r8          # partials live at WRAM[2048 + 4*tid]
        sw   r5, r4, 0
        halt
"""


def main() -> None:
    # A small instance of the 2560-DPU server is plenty for a demo.
    system = DpuSystem(UPMEM_ATTRIBUTES.scaled(4))
    dpu_set = system.allocate(4)
    print(f"allocated {len(dpu_set)} DPUs "
          f"(system has {system.n_dpus}, {system.n_free} now free)")

    image = DpuImage(
        name="quickstart_sum",
        program=assemble(SUM_PROGRAM, name="sum"),
        symbols={"input": Symbol("input", 0, 4 * N_VALUES)},
    )
    dpu_set.load(image)

    # A different array for every DPU (the prepare/push scatter pattern).
    rng = np.random.default_rng(0)
    arrays = [
        rng.integers(0, 1000, N_VALUES).astype(np.int32) for _ in dpu_set
    ]
    dpu_set.scatter("input", arrays)

    report = dpu_set.launch(n_tasklets=16)
    print(f"launch finished in {report.cycles:.0f} DPU cycles "
          f"({report.seconds * 1e6:.1f} us at 350 MHz)")

    for i, dpu in enumerate(dpu_set):
        partials = dpu.wram.read_array(2048, np.int32, 16)
        total = int(partials.sum())
        expected = int(arrays[i].sum())
        status = "OK" if total == expected else "MISMATCH"
        print(f"  dpu{i}: sum={total} expected={expected}  [{status}]")
        assert total == expected

    system.free(dpu_set)
    print("done — see examples/ebnn_mnist.py for a real CNN workload")


if __name__ == "__main__":
    main()
