"""Online serving tour: queues, dynamic batching, and the warm DPU pool.

Walks the :mod:`repro.serve` subsystem end to end on the simulated
clock:

1. build a warm pool — eBNN image + LUT preloaded, YOLO weights
   pre-quantized — over a small simulated system,
2. generate a seeded mixed workload and serve it, watching how the
   batcher trades queueing delay for multi-image-per-DPU launches,
3. re-serve the same workload under injected DPU faults with the
   ``isolate`` policy: the pool quarantines dead DPUs, heals from the
   system's spare DPUs, retries the affected requests, and still
   resolves every request,
4. cross-check the serving contract: batched outputs are bit-identical
   to offline one-at-a-time runs.

Run:  PYTHONPATH=src python examples/serving_demo.py
"""

import numpy as np

from repro import faults
from repro.dpu.attributes import UPMEM_ATTRIBUTES
from repro.host.runtime import DpuSystem
from repro.serve import (
    BatchPolicy,
    DpuPool,
    EbnnBackend,
    InferenceServer,
    LoadSpec,
    YoloBackend,
    default_payloads,
    generate_load,
    run_offline,
)

WORKLOAD = LoadSpec(
    rps=2500.0,
    duration_s=0.008,
    seed=17,
    mix=(("ebnn", 3.0), ("yolo", 1.0)),
)
POLICY = BatchPolicy(max_batch=8, max_delay_s=1e-3, queue_cap=32)


def build_pool() -> DpuPool:
    system = DpuSystem(UPMEM_ATTRIBUTES.scaled(10))
    return DpuPool(
        system,
        [EbnnBackend(), YoloBackend()],
        dpus_per_model={"ebnn": 4, "yolo": 3},
    )


def main() -> None:
    payloads = default_payloads()
    requests = generate_load(WORKLOAD, payloads)
    print(f"workload: {len(requests)} requests at {WORKLOAD.rps:g} req/s "
          f"(seed {WORKLOAD.seed})\n")

    # -- 1. clean serving run ------------------------------------------- #
    pool = build_pool()
    server = InferenceServer(pool, policy=POLICY)
    result = server.run(requests)
    print("clean run:")
    print(result.summary())
    print(f"  batch sizes: {result.batch_size_counts()}\n")

    # -- 2. the equivalence contract ------------------------------------ #
    reference = run_offline(build_pool(), requests)
    for response in result.completed:
        ref = reference[response.request_id]
        if isinstance(response.output, (int, np.integer)):
            assert response.output == ref
        else:
            assert all(
                np.array_equal(a, b) for a, b in zip(response.output, ref)
            )
    print("equivalence: batched outputs == offline one-at-a-time outputs\n")

    # -- 3. graceful degradation under injected faults ------------------ #
    pool = build_pool()
    server = InferenceServer(pool, policy=POLICY, fault_policy="isolate")
    plan = faults.FaultPlan(
        seed=5, fault_rate=0.3, default_policy="isolate"
    )
    with faults.fault_injection(plan):
        degraded = server.run(generate_load(WORKLOAD, payloads))
    print("faulty run (30% per-DPU fault rate, isolate policy):")
    print(degraded.summary())
    for model in ("ebnn", "yolo"):
        print(f"  pool[{model}]: {pool.active_dpus(model)} healthy DPUs")
    retried = [r for r in degraded.completed if r.attempts > 1]
    print(f"  completed via retry after a DPU fault: {len(retried)}")
    assert len(degraded.completed) + len(degraded.rejected) == len(requests)
    print("\nevery request resolved: completed + rejected == offered")


if __name__ == "__main__":
    main()
